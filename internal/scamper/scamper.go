// Package scamper implements a scamper-style stateful prober (Luckie, IMC
// 2010): ping trains with configurable spacing, probes over ICMP, UDP and
// TCP ACK, and explicit per-probe matching by id/sequence (unlike the ISI
// surveyor's source-address matching). The paper uses scamper for its
// verification experiments (§5.1, §5.3) and for the first-ping and
// high-latency-pattern studies (§6.3, §6.4).
//
// Responses are collected for as long as the simulation runs — the
// equivalent of the paper running tcpdump alongside scamper to get an
// "indefinite" timeout — so arbitrarily late responses are observed.
package scamper

import (
	"fmt"
	"sort"
	"time"

	"timeouts/internal/ipaddr"
	"timeouts/internal/ipmeta"
	"timeouts/internal/obs"
	"timeouts/internal/simnet"
	"timeouts/internal/transport"
	"timeouts/internal/wire"
)

// Proto selects a probe protocol.
type Proto uint8

// Probe protocols. TCP probes are bare ACKs: the paper avoided SYNs so its
// probes would not be mistaken for vulnerability scanning (§5.3).
const (
	ICMP Proto = iota
	UDP
	TCP
)

var protoNames = [...]string{"icmp", "udp", "tcp"}

// String names the protocol.
func (p Proto) String() string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return "Proto?"
}

// ProbeResult records the fate of one probe.
type ProbeResult struct {
	Dst       ipaddr.Addr
	Proto     Proto
	Seq       int
	SentAt    simnet.Time
	Responded bool
	RTT       time.Duration
	// ReplyTTL is the TTL of the response packet; TCP RSTs forged by
	// perimeter firewalls stand out by their distinct TTL (§5.3).
	ReplyTTL byte
}

// Prober is a stateful prober attached to the network. Create with New,
// schedule experiments, run the scheduler, then read results.
type Prober struct {
	net       *simnet.Network // kept for SetObserver; probe I/O goes via tr
	tr        transport.Transport
	sched     *simnet.Scheduler
	src       ipaddr.Addr
	continent ipmeta.Continent
	nextToken uint16
	pending   map[probeKey]*ProbeResult
	results   []*ProbeResult
	decodeErr uint64

	// Observability (nil-safe no-ops unless SetObserver installs them).
	obsProbes    *obs.Counter
	obsResponses *obs.Counter
	obsDecodeErr *obs.Counter
	obsRTT       *obs.Histogram

	// traceroute state (see traceroute.go)
	trPending map[tracerouteKey]*HopResult
	trResults map[ipaddr.Addr][]*HopResult
	sentAt    map[tracerouteKey]simnet.Time

	// Hot-path scratch: reusable decoder and pooled probe buffer.
	dec wire.Decoder
	buf *[]byte
}

// pingEvent is one scheduled ping of a train: a preallocated simnet.Event
// replacing a closure per probe.
type pingEvent struct {
	p          *Prober
	dst        ipaddr.Addr
	proto      Proto
	token, seq uint16
}

func (e *pingEvent) Run(simnet.Time) { e.p.send(e.dst, e.proto, e.token, e.seq) }

// udpProbePayload is the fixed payload scamper-style UDP probes carry.
var udpProbePayload = []byte{0xDE, 0xAD, 0xBE, 0xEF}

// probeKey identifies an outstanding probe for explicit matching.
type probeKey struct {
	dst   ipaddr.Addr
	proto Proto
	token uint16 // ICMP id / UDP+TCP source port
	seq   uint16
}

// New attaches a prober at src.
func New(net *simnet.Network, src ipaddr.Addr, continent ipmeta.Continent) *Prober {
	p := &Prober{
		net:       net,
		tr:        transport.NewSim(net, src),
		sched:     net.Scheduler(),
		src:       src,
		continent: continent,
		nextToken: 0x8000, // tokens double as source ports; stay ephemeral
		pending:   make(map[probeKey]*ProbeResult),
		sentAt:    make(map[tracerouteKey]simnet.Time),
		buf:       wire.GetBuf(),
	}
	p.tr.SetHandler(p.receive)
	return p
}

// Close detaches the prober from the network.
func (p *Prober) Close() {
	p.tr.Close()
	if p.buf != nil {
		wire.PutBuf(p.buf)
		p.buf = nil
	}
}

// SetObserver registers the prober's metrics — probes sent, responses
// matched, decode errors, and a per-probe RTT histogram — plus the
// network/scheduler substrate metrics on reg.
func (p *Prober) SetObserver(reg *obs.Registry) {
	p.obsProbes = reg.Counter("scamper.probes_sent")
	p.obsResponses = reg.Counter("scamper.responses")
	p.obsDecodeErr = reg.Counter("scamper.decode_errors")
	p.obsRTT = reg.Histogram("scamper.rtt")
	p.net.SetObserver(reg)
}

// Src returns the prober's source address.
func (p *Prober) Src() ipaddr.Addr { return p.src }

// Continent returns the prober's location.
func (p *Prober) Continent() ipmeta.Continent { return p.continent }

// SchedulePing schedules count probes of the given protocol to dst,
// starting at start, spaced by interval. All probes of the train share one
// token, so trains to the same destination can coexist.
func (p *Prober) SchedulePing(dst ipaddr.Addr, proto Proto, start simnet.Time, count int, interval time.Duration) {
	token := p.nextToken
	p.nextToken++
	if p.nextToken == 0 {
		p.nextToken = 0x8000
	}
	sched := p.sched
	// Exact capacity keeps element addresses stable across appends.
	events := make([]pingEvent, 0, count)
	for i := 0; i < count; i++ {
		events = append(events, pingEvent{p: p, dst: dst, proto: proto, token: token, seq: uint16(i)})
		sched.AtEvent(start+simnet.Time(i)*interval, &events[i])
	}
}

// send emits one probe and registers it for matching.
func (p *Prober) send(dst ipaddr.Addr, proto Proto, token, seq uint16) {
	now := p.sched.Now()
	res := &ProbeResult{Dst: dst, Proto: proto, Seq: int(seq), SentAt: now}
	key := probeKey{dst: dst, proto: proto, token: token, seq: seq}
	if old, dup := p.pending[key]; dup {
		// A previous identical probe is still unanswered; keep the newer
		// one (matches scamper, which reuses ids across long runs).
		_ = old
	}
	p.pending[key] = res
	p.results = append(p.results, res)
	p.obsProbes.Inc()

	var pkt []byte
	b := (*p.buf)[:0]
	switch proto {
	case ICMP:
		pkt = wire.AppendEcho(b, p.src, dst, &wire.ICMPEcho{
			Type: wire.ICMPTypeEchoRequest, ID: token, Seq: seq,
		})
	case UDP:
		// Destination ports walk the traceroute range by sequence; the
		// source port carries the token. The quoted probe inside the ICMP
		// error returns both.
		pkt = wire.AppendUDP(b, p.src, dst, &wire.UDP{
			SrcPort: token, DstPort: 33435 + seq,
			Payload: udpProbePayload,
		})
	case TCP:
		// Bare ACK; Ack number encodes the sequence so the RST's Seq
		// reflects it back.
		pkt = wire.AppendTCP(b, p.src, dst, &wire.TCP{
			SrcPort: token, DstPort: 80,
			Ack: uint32(seq)<<16 | 0x5CA9, Flags: wire.TCPFlagACK, Window: 1024,
		})
	default:
		panic(fmt.Sprintf("scamper: unknown protocol %d", proto))
	}
	*p.buf = pkt
	p.tr.SendTo(transport.InPacket, pkt)
}

// DecodeErrors returns how many received packets failed to decode — wire
// noise (or injected corruption) the prober counted and continued past.
func (p *Prober) DecodeErrors() uint64 { return p.decodeErr }

// receive matches responses to outstanding probes.
func (p *Prober) receive(at transport.Time, from transport.Addr, data []byte, count int) {
	_ = from // the responder's address rides inside the wire packet
	pkt, err := p.dec.Decode(data)
	if err != nil {
		p.decodeErr += uint64(count)
		p.obsDecodeErr.Add(uint64(count))
		return
	}
	if p.handleTraceroute(at, pkt) {
		return
	}
	var key probeKey
	var ttl byte = pkt.IP.TTL
	switch {
	case pkt.Echo != nil && pkt.Echo.Type == wire.ICMPTypeEchoReply:
		key = probeKey{dst: pkt.IP.Src, proto: ICMP, token: pkt.Echo.ID, seq: pkt.Echo.Seq}
	case pkt.Err != nil:
		// An ICMP error answering a UDP probe: recover ports from the
		// quoted probe.
		qh, l4, err := pkt.Err.Quoted()
		if err != nil || len(l4) < 4 {
			return
		}
		switch qh.Protocol {
		case wire.ProtoUDP:
			sp := uint16(l4[0])<<8 | uint16(l4[1])
			dp := uint16(l4[2])<<8 | uint16(l4[3])
			if dp < 33435 {
				return
			}
			key = probeKey{dst: qh.Dst, proto: UDP, token: sp, seq: dp - 33435}
		default:
			return
		}
	case pkt.TCP != nil && pkt.TCP.Flags&wire.TCPFlagRST != 0:
		seq := uint16(pkt.TCP.Seq >> 16)
		if pkt.TCP.Seq&0xffff != 0x5CA9 {
			return
		}
		key = probeKey{dst: pkt.IP.Src, proto: TCP, token: pkt.TCP.DstPort, seq: seq}
	default:
		return
	}
	res, ok := p.pending[key]
	if !ok {
		return // duplicate or stray; scamper ignores these
	}
	delete(p.pending, key)
	res.Responded = true
	res.RTT = time.Duration(at - res.SentAt)
	res.ReplyTTL = ttl
	p.obsResponses.Inc()
	p.obsRTT.Observe(res.RTT)
}

// Results returns every probe result, ordered by (destination, protocol,
// send time). Unanswered probes have Responded=false.
func (p *Prober) Results() []ProbeResult {
	out := make([]ProbeResult, len(p.results))
	for i, r := range p.results {
		out[i] = *r
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dst != out[j].Dst {
			return out[i].Dst < out[j].Dst
		}
		if out[i].Proto != out[j].Proto {
			return out[i].Proto < out[j].Proto
		}
		return out[i].SentAt < out[j].SentAt
	})
	return out
}

// ResultsFor returns the results for one destination and protocol in send
// order.
func (p *Prober) ResultsFor(dst ipaddr.Addr, proto Proto) []ProbeResult {
	var out []ProbeResult
	for _, r := range p.results {
		if r.Dst == dst && r.Proto == proto {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SentAt < out[j].SentAt })
	return out
}
