package scamper

import (
	"testing"
	"time"

	"timeouts/internal/faults"
	"timeouts/internal/ipaddr"
	"timeouts/internal/ipmeta"
	"timeouts/internal/simnet"
)

// TestChaosCorruptRepliesCountedAsLoss: under total wire corruption every
// reply arrives undecodable; the prober must count each one and keep probing
// — the train completes with every probe recorded as lost, not a crash.
func TestChaosCorruptRepliesCountedAsLoss(t *testing.T) {
	sched := &simnet.Scheduler{}
	net := simnet.NewNetwork(sched, &fixedFabric{delay: 40 * time.Millisecond})
	net.SetFaults(&faults.Plan{Seed: 2, Wire: faults.WireConfig{CorruptRate: 1}})
	pr := New(net, ipaddr.MustParse("240.0.3.1"), ipmeta.NorthAmerica)
	dst := ipaddr.MustParse("1.2.3.4")
	pr.SchedulePing(dst, ICMP, 0, 5, time.Second)
	sched.Run()

	if pr.DecodeErrors() != 5 {
		t.Fatalf("DecodeErrors = %d, want 5", pr.DecodeErrors())
	}
	rs := pr.ResultsFor(dst, ICMP)
	if len(rs) != 5 {
		t.Fatalf("results = %d, want 5", len(rs))
	}
	for i, r := range rs {
		if r.Responded {
			t.Errorf("probe %d matched a corrupted reply", i)
		}
	}
}

// TestChaosFaultOffProberUnchanged: a zero-rate plan must leave the prober's
// measurements untouched.
func TestChaosFaultOffProberUnchanged(t *testing.T) {
	sched := &simnet.Scheduler{}
	net := simnet.NewNetwork(sched, &fixedFabric{delay: 40 * time.Millisecond})
	net.SetFaults(&faults.Plan{Seed: 2})
	pr := New(net, ipaddr.MustParse("240.0.3.1"), ipmeta.NorthAmerica)
	dst := ipaddr.MustParse("1.2.3.4")
	pr.SchedulePing(dst, ICMP, 0, 3, time.Second)
	sched.Run()

	if pr.DecodeErrors() != 0 {
		t.Fatalf("DecodeErrors = %d under zero-rate plan", pr.DecodeErrors())
	}
	for i, r := range pr.ResultsFor(dst, ICMP) {
		if !r.Responded || r.RTT != 40*time.Millisecond {
			t.Errorf("probe %d: responded=%v rtt=%v", i, r.Responded, r.RTT)
		}
	}
}
