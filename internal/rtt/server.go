package rtt

import (
	"sync"
	"sync/atomic"
	"time"

	"timeouts/internal/obs"
	"timeouts/internal/transport"
	"timeouts/internal/xrand"
)

// siteToken salts session-token derivation so tokens are independent of any
// other use of the server seed.
const siteToken uint64 = 0x746f6b65 // "toke"

// ServerConfig configures a session server.
type ServerConfig struct {
	// Key is the pre-shared HMAC key. Required.
	Key []byte
	// Seed makes session tokens deterministic (tokens are identity, not
	// secrets — the HMAC authenticates). Zero is a valid seed.
	Seed uint64
	// MaxConns bounds concurrent sessions (default 64). Hellos beyond the
	// bound are ignored, indistinguishable from an absent server.
	MaxConns int
	// IdleTimeout expires sessions with no traffic (default 2m). Expiry is
	// swept as other packets arrive and, so a quiet listener cannot hold
	// dead sessions forever, by a periodic background sweeper.
	IdleTimeout time.Duration
	// SweepInterval is the background sweeper's period (default
	// IdleTimeout/2). The sweeper is what reclaims expired sessions when no
	// packet arrives to trigger the lazy sweep; without it the session table
	// and its MaxConns slots stay occupied until the next hello. Negative
	// disables the sweeper explicitly; it also stays off on transports that
	// are not transport.WallClocked (the sim), whose clocks only advance
	// under the event loop and must not be read from a timer goroutine.
	SweepInterval time.Duration
}

// sconn is one accepted session.
type sconn struct {
	token uint64
	from  transport.Addr
	// nonce is the client's hello nonce; (from, nonce) dedupes handshake
	// retries onto the existing session.
	nonce    uint64
	lastSeen transport.Time
	echoes   uint64
}

// Server answers authenticated echo probes over a Transport. All packet
// handling runs on the transport's delivery context (the simulation event
// loop, or the UDP pump goroutine), single-threaded, with reusable scratch
// so the echo path performs no steady-state allocations. The only other
// goroutine that touches session state is the periodic idle sweeper, which
// mu serializes against the handler.
type Server struct {
	tr  transport.Transport
	cfg ServerConfig
	mac *MAC

	// mu guards conns and lastSweep: the handler runs on the transport's
	// delivery context, the background sweeper on its own timer goroutine.
	// nconns mirrors the table size atomically for lock-free readers.
	mu        sync.Mutex
	conns     map[uint64]*sconn
	nconns    atomic.Int64
	nextConn  uint64
	lastSweep transport.Time

	// sweepStop/sweepDone bracket the background sweeper's lifetime.
	sweepStop chan struct{}
	sweepDone chan struct{}

	out []byte // reusable reply buffer
	hdr Header // reusable decode scratch

	// Stats are atomics: the handler runs on the transport's goroutine,
	// readers on the caller's.
	packets, authFails, hellos, echoes, closes, unknownToken atomic.Uint64

	// Observability (nil-safe no-ops unless SetObserver installs them).
	obsPackets  *obs.Counter
	obsAuthFail *obs.Counter
	obsEchoes   *obs.Counter
	obsConns    *obs.Gauge
	obsProc     *obs.Histogram
}

// NewServer creates a server speaking over tr. Call Start to begin serving.
func NewServer(tr transport.Transport, cfg ServerConfig) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	switch {
	case cfg.SweepInterval == 0:
		cfg.SweepInterval = cfg.IdleTimeout / 2
	case cfg.SweepInterval < 0:
		cfg.SweepInterval = 0 // sweeper disabled
	}
	return &Server{
		tr:    tr,
		cfg:   cfg,
		mac:   NewMAC(cfg.Key),
		conns: make(map[uint64]*sconn),
		out:   make([]byte, 0, HeaderLen+512),
	}
}

// SetObserver registers the server's metrics on reg. Call before Start.
func (s *Server) SetObserver(reg *obs.Registry) {
	s.obsPackets = reg.Counter("rtt.server.packets")
	s.obsAuthFail = reg.Counter("rtt.server.auth_failures")
	s.obsEchoes = reg.Counter("rtt.server.echoes")
	s.obsConns = reg.Gauge("rtt.server.conns")
	s.obsProc = reg.Histogram("rtt.server.turnaround")
}

// Start attaches the server to its transport and begins answering. On
// wall-clocked transports it also starts the periodic idle sweeper, so a
// listener that goes quiet still reclaims expired sessions.
func (s *Server) Start() {
	s.tr.SetHandler(s.handle)
	if s.cfg.SweepInterval > 0 && transport.IsWallClocked(s.tr) && s.sweepStop == nil {
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweeper()
	}
}

// Close detaches the server and stops the idle sweeper. The transport
// itself is the caller's to close.
func (s *Server) Close() {
	s.tr.SetHandler(nil)
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
		s.sweepStop, s.sweepDone = nil, nil
	}
}

// sweeper periodically expires idle sessions so a listener that stops
// hearing traffic still reclaims session state and MaxConns slots.
func (s *Server) sweeper() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.mu.Lock()
			s.expire(s.tr.Now())
			s.mu.Unlock()
		}
	}
}

// Packets returns how many packets arrived (authenticated or not).
func (s *Server) Packets() uint64 { return s.packets.Load() }

// AuthFailures returns how many packets failed decode or HMAC verification.
func (s *Server) AuthFailures() uint64 { return s.authFails.Load() }

// Hellos returns how many sessions were accepted.
func (s *Server) Hellos() uint64 { return s.hellos.Load() }

// Echoes returns how many echo requests were answered.
func (s *Server) Echoes() uint64 { return s.echoes.Load() }

// Conns returns the number of live sessions.
func (s *Server) Conns() int { return int(s.nconns.Load()) }

// CollectProm exports the server's live scrape-time series — most usefully
// the *current* session count, which the registry cannot carry (its gauges
// are merge-safe high-water marks, and sessions come and go).
func (s *Server) CollectProm(w *obs.PromWriter) {
	if s == nil {
		return
	}
	w.Type("rtt_server_live_sessions", "gauge")
	w.Sample("rtt_server_live_sessions", float64(s.Conns()))
	w.Type("rtt_server_packets_total", "counter")
	w.Sample("rtt_server_packets_total", float64(s.Packets()))
	w.Type("rtt_server_auth_failures_total", "counter")
	w.Sample("rtt_server_auth_failures_total", float64(s.AuthFailures()))
}

// handle processes one arriving packet. count collapses identical duplicate
// deliveries; the server answers once per call — a duplicated probe yields
// one reply, and the client's own duplicate accounting covers the rest.
func (s *Server) handle(at transport.Time, from transport.Addr, data []byte, count int) {
	_ = count
	s.packets.Add(1)
	s.obsPackets.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweep(at)
	payload, err := DecodePacket(data, s.mac, &s.hdr)
	if err != nil {
		s.authFails.Add(1)
		s.obsAuthFail.Inc()
		return
	}
	switch s.hdr.Type {
	case TypeHello:
		s.handleHello(at, from, payload)
	case TypeEchoRequest:
		s.handleEcho(at, from, payload)
	case TypeClose:
		if _, ok := s.conns[s.hdr.Token]; ok {
			delete(s.conns, s.hdr.Token)
			s.nconns.Store(int64(len(s.conns)))
			s.closes.Add(1)
			s.obsConns.Observe(int64(len(s.conns)))
		}
	default:
		// Accept / echo-reply are server-to-client; ignore reflections.
	}
}

// handleHello accepts a new session and answers with its token. The reply
// carries the client's hello nonce back in Seq and preserves CTime, so the
// client can match accept to attempt. A hello repeating a live session's
// (from, nonce) — a handshake retry after a lost accept — reuses that
// session and resends its token instead of minting another, so retries never
// leak extra sessions against MaxConns.
func (s *Server) handleHello(at transport.Time, from transport.Addr, payload []byte) {
	if _, _, err := parseHelloParams(payload); err != nil {
		s.authFails.Add(1)
		s.obsAuthFail.Inc()
		return
	}
	nonce := s.hdr.Seq
	var c *sconn
	for _, sc := range s.conns {
		if sc.from == from && sc.nonce == nonce {
			c = sc
			break
		}
	}
	if c == nil {
		if len(s.conns) >= s.cfg.MaxConns {
			return
		}
		c = &sconn{token: s.newToken(), from: from, nonce: nonce, lastSeen: at}
		s.conns[c.token] = c
		s.nconns.Store(int64(len(s.conns)))
		s.hellos.Add(1)
		s.obsConns.Observe(int64(len(s.conns)))
	} else {
		c.lastSeen = at
	}
	h := Header{
		Type:  TypeAccept,
		Token: c.token,
		Seq:   nonce,
		CTime: s.hdr.CTime,
		SRecv: int64(at),
		SSend: int64(s.tr.Now()),
	}
	s.out = AppendPacket(s.out[:0], s.mac, &h, nil)
	s.tr.SendTo(from, s.out)
}

// handleEcho answers one probe: same seq and ctime, plus the receive and
// send stamps on the server clock, payload echoed verbatim.
func (s *Server) handleEcho(at transport.Time, from transport.Addr, payload []byte) {
	c, ok := s.conns[s.hdr.Token]
	if !ok {
		s.unknownToken.Add(1)
		return
	}
	c.lastSeen = at
	c.from = from
	c.echoes++
	s.echoes.Add(1)
	s.obsEchoes.Inc()
	now := s.tr.Now()
	h := Header{
		Type:  TypeEchoReply,
		Token: c.token,
		Seq:   s.hdr.Seq,
		CTime: s.hdr.CTime,
		SRecv: int64(at),
		SSend: int64(now),
	}
	s.obsProc.Observe(time.Duration(now - at))
	s.out = AppendPacket(s.out[:0], s.mac, &h, payload)
	s.tr.SendTo(from, s.out)
}

// newToken derives the next session token: deterministic in (seed, session
// ordinal), nonzero, collision-checked against live sessions.
func (s *Server) newToken() uint64 {
	for {
		t := xrand.Hash(s.cfg.Seed, siteToken, s.nextConn)
		s.nextConn++
		if t == 0 {
			continue
		}
		if _, taken := s.conns[t]; !taken {
			return t
		}
	}
}

// sweep lazily expires idle sessions, at most once per idle-timeout window.
// The caller holds mu.
func (s *Server) sweep(at transport.Time) {
	if at-s.lastSweep < transport.Time(s.cfg.IdleTimeout) {
		return
	}
	s.expire(at)
}

// expire removes every session idle past the timeout. The caller holds mu.
func (s *Server) expire(at transport.Time) {
	s.lastSweep = at
	idle := transport.Time(s.cfg.IdleTimeout)
	for tok, c := range s.conns {
		if at-c.lastSeen >= idle {
			delete(s.conns, tok)
		}
	}
	s.nconns.Store(int64(len(s.conns)))
	s.obsConns.Observe(int64(len(s.conns)))
}
