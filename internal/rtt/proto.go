// Package rtt is an irtt-style isochronous round-trip latency measurement
// plane: a UDP server with HMAC-authenticated sessions and a client that
// sends probes on a fixed schedule, tracks sequence numbers, and computes
// round-trip and one-way delays from server timestamps.
//
// It exists to carry the paper's core lesson ("Timeouts: Beware Surprisingly
// High Delay", IMC 2015) into a live measurement tool: a response that
// arrives after the per-probe timeout is *late*, not *lost* — the client
// keeps listening past each probe's timeout and reports such responses under
// rtt_after_timeout instead of dropping them, exactly the long-listening
// methodology the paper's surveyor uses in simulation.
//
// Both ends speak through the transport boundary (internal/transport), so
// the same session logic runs over a real UDP socket and over the
// deterministic simulation — the sim acts as the oracle for the live plane's
// protocol behavior.
//
// # Session protocol
//
// Every packet is a 64-byte header followed by an optional payload:
//
//	[0:4]   magic "RTT1"
//	[4]     type (hello, accept, echo-request, echo-reply, close)
//	[5]     flags (reserved, zero)
//	[6:8]   reserved (zero)
//	[8:16]  token   — session identity, assigned by the server at accept
//	[16:24] seq     — probe sequence number
//	[24:32] ctime   — client send time, ns on the client clock
//	[32:40] srecv   — server receive time, ns on the server clock
//	[40:48] ssend   — server send time, ns on the server clock
//	[48:64] HMAC-SHA256/128 over bytes [0:48] and the payload
//
// The truncated HMAC authenticates every packet under a pre-shared key;
// packets that fail verification are counted and ignored, never answered —
// an unauthenticated scanner cannot tell the server is there. The handshake
// is one round trip: hello (client nonce in seq, params in the payload) /
// accept (server-assigned token). Echo replies preserve seq and ctime and
// add the two server timestamps, so the client needs no per-probe state
// beyond its send log, and one-way delays fall out when the two clocks
// share an epoch (always true in the simulation).
package rtt

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"hash"
)

// Magic opens every session packet.
const Magic = "RTT1"

// Packet types.
const (
	TypeHello       = 1 // client → server: open a session
	TypeAccept      = 2 // server → client: session granted, token assigned
	TypeEchoRequest = 3 // client → server: one probe
	TypeEchoReply   = 4 // server → client: probe echoed with timestamps
	TypeClose       = 5 // client → server: session done
)

// Version is the protocol version carried in hello payloads.
const Version = 1

// Header and MAC geometry.
const (
	HeaderLen = 64 // full header, MAC included
	macOff    = 48 // MAC field offset
	MACLen    = 16 // HMAC-SHA256 truncated to 128 bits
)

// helloParamsLen is the hello payload prefix: version (u16) and the payload
// length the client will use for echo requests (u16).
const helloParamsLen = 4

// MaxPacketLen bounds a session packet; payloads beyond this are rejected.
const MaxPacketLen = 64 << 10

// Decode/verify failures. Indistinguishable to the peer (no packet is ever
// answered with an error), distinguished locally for counters.
var (
	ErrShort   = errors.New("rtt: packet shorter than header")
	ErrMagic   = errors.New("rtt: bad magic")
	ErrAuth    = errors.New("rtt: HMAC verification failed")
	ErrType    = errors.New("rtt: unknown packet type")
	ErrVersion = errors.New("rtt: protocol version mismatch")
)

// Header is the fixed-size packet header, MAC excluded.
type Header struct {
	Type  uint8
	Flags uint8
	Token uint64
	Seq   uint64
	CTime int64 // client send time, ns (client clock)
	SRecv int64 // server receive time, ns (server clock)
	SSend int64 // server send time, ns (server clock)
}

// MAC is a reusable HMAC-SHA256 state bound to one session key. Reset/Write/
// Sum into a fixed-size scratch array keeps signing and verification
// allocation-free on the per-packet path. Not safe for concurrent use; each
// single-threaded endpoint owns one.
type MAC struct {
	h   hash.Hash
	sum [sha256.Size]byte
}

// NewMAC binds a MAC state to key.
func NewMAC(key []byte) *MAC {
	return &MAC{h: hmac.New(sha256.New, key)}
}

// compute writes the packet MAC (header bytes before the MAC field, then the
// payload after it) into m.sum and returns the truncated tag.
func (m *MAC) compute(pkt []byte) []byte {
	m.h.Reset()
	m.h.Write(pkt[:macOff])
	m.h.Write(pkt[HeaderLen:])
	return m.h.Sum(m.sum[:0])[:MACLen]
}

// AppendPacket appends a signed session packet to b and returns the extended
// slice. The payload may be nil.
func AppendPacket(b []byte, m *MAC, h *Header, payload []byte) []byte {
	off := len(b)
	b = append(b, make([]byte, HeaderLen)...)
	b = append(b, payload...)
	p := b[off:]
	copy(p[0:4], Magic)
	p[4] = h.Type
	p[5] = h.Flags
	binary.BigEndian.PutUint64(p[8:16], h.Token)
	binary.BigEndian.PutUint64(p[16:24], h.Seq)
	binary.BigEndian.PutUint64(p[24:32], uint64(h.CTime))
	binary.BigEndian.PutUint64(p[32:40], uint64(h.SRecv))
	binary.BigEndian.PutUint64(p[40:48], uint64(h.SSend))
	copy(p[macOff:HeaderLen], m.compute(p))
	return b
}

// DecodePacket parses and authenticates one session packet, filling h and
// returning the payload (aliasing pkt). The header is parsed only after the
// MAC verifies.
func DecodePacket(pkt []byte, m *MAC, h *Header) ([]byte, error) {
	if len(pkt) < HeaderLen {
		return nil, ErrShort
	}
	if string(pkt[0:4]) != Magic {
		return nil, ErrMagic
	}
	if !hmac.Equal(pkt[macOff:HeaderLen], m.compute(pkt)) {
		return nil, ErrAuth
	}
	h.Type = pkt[4]
	h.Flags = pkt[5]
	h.Token = binary.BigEndian.Uint64(pkt[8:16])
	h.Seq = binary.BigEndian.Uint64(pkt[16:24])
	h.CTime = int64(binary.BigEndian.Uint64(pkt[24:32]))
	h.SRecv = int64(binary.BigEndian.Uint64(pkt[32:40]))
	h.SSend = int64(binary.BigEndian.Uint64(pkt[40:48]))
	if h.Type < TypeHello || h.Type > TypeClose {
		return nil, ErrType
	}
	return pkt[HeaderLen:], nil
}

// appendHelloParams appends the hello payload prefix.
func appendHelloParams(b []byte, payloadLen int) []byte {
	var p [helloParamsLen]byte
	binary.BigEndian.PutUint16(p[0:2], Version)
	binary.BigEndian.PutUint16(p[2:4], uint16(payloadLen))
	return append(b, p[:]...)
}

// parseHelloParams extracts (version, echo payload length) from a hello
// payload.
func parseHelloParams(payload []byte) (version, payloadLen int, err error) {
	if len(payload) < helloParamsLen {
		return 0, 0, ErrShort
	}
	version = int(binary.BigEndian.Uint16(payload[0:2]))
	payloadLen = int(binary.BigEndian.Uint16(payload[2:4]))
	if version != Version {
		return version, payloadLen, ErrVersion
	}
	return version, payloadLen, nil
}
