package rtt

import (
	"errors"
	"fmt"
	"time"

	"timeouts/internal/obs"
	"timeouts/internal/stats"
	"timeouts/internal/transport"
	"timeouts/internal/xrand"
)

// siteNonce salts hello-nonce derivation.
const siteNonce uint64 = 0x6e6f6e63 // "nonc"

// ClientConfig configures one measurement session.
type ClientConfig struct {
	// Server is the server's transport address.
	Server transport.Addr
	// Key is the pre-shared HMAC key. Required, and must match the server's.
	Key []byte
	// Seed makes the hello nonce deterministic. Zero is a valid seed.
	Seed uint64
	// Count is the number of probes (default 10).
	Count int
	// Interval is the isochronous send spacing (default 100ms). Each probe
	// is sent at handshake-end + i*Interval on the client clock, regardless
	// of how long replies take — send pacing never couples to receive
	// latency, which is what makes the schedule isochronous.
	Interval time.Duration
	// Timeout is the per-probe timeout (default 1s). A reply beyond it is
	// counted as rtt_after_timeout — late, not lost (the paper's core
	// distinction). It never gates listening: the client keeps receiving
	// until Wait expires.
	Timeout time.Duration
	// Wait is the listen window after the last send (default 3*Timeout).
	// Replies beyond it are genuinely counted lost — the one unavoidable
	// horizon, made explicit and generous rather than hidden in a socket
	// timeout.
	Wait time.Duration
	// PayloadLen pads echo requests with this many zero bytes (default 0).
	PayloadLen int
	// HandshakeTimeout bounds one hello/accept exchange (default 1s);
	// HandshakeTries retries it (default 3).
	HandshakeTimeout time.Duration
	HandshakeTries   int
}

func (c *ClientConfig) fill() {
	if c.Count <= 0 {
		c.Count = 10
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.Wait <= 0 {
		c.Wait = 3 * c.Timeout
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = time.Second
	}
	if c.HandshakeTries <= 0 {
		c.HandshakeTries = 3
	}
}

// Probe records the fate of one probe.
type Probe struct {
	Seq  uint64 `json:"seq"`
	Sent int64  `json:"sent_ns"` // client clock, ns
	// Received reports whether any reply arrived within the listen window.
	Received bool  `json:"received"`
	RecvAt   int64 `json:"recv_ns,omitempty"` // client clock, ns
	// RTT is the full round-trip time, server turnaround included.
	RTT time.Duration `json:"rtt_ns,omitempty"`
	// ServerProc is the server's receive-to-send turnaround.
	ServerProc time.Duration `json:"server_proc_ns,omitempty"`
	// SendOWD and RecvOWD are the one-way delays computed from server
	// timestamps. They are exact when both clocks share an epoch (always in
	// the simulation); over real sockets they carry the unknown clock
	// offset, like irtt without clock sync.
	SendOWD time.Duration `json:"send_owd_ns,omitempty"`
	RecvOWD time.Duration `json:"recv_owd_ns,omitempty"`
	// AfterTimeout marks a reply that arrived after the per-probe timeout:
	// reported late, never dropped.
	AfterTimeout bool `json:"rtt_after_timeout,omitempty"`
	// Dups counts extra replies to this probe beyond the first.
	Dups int `json:"dups,omitempty"`
}

// Result is one session's outcome.
type Result struct {
	Sent     int `json:"sent"`
	Received int `json:"received"`
	// RTTAfterTimeout counts replies that beat the listen window but not
	// the per-probe timeout — the paper's surprisingly-high-delay band.
	RTTAfterTimeout int `json:"rtt_after_timeout"`
	Lost            int `json:"lost"`
	Dups            int `json:"dups"`
	// BadPackets counts arrivals that failed decode or HMAC verification.
	BadPackets int `json:"bad_packets"`
	// RTT summarizes round-trip times over all received replies, late ones
	// included, at the paper's standard percentiles.
	RTT QuantilesJSON `json:"rtt"`
	// Probes lists every probe in sequence order.
	Probes []Probe `json:"probes"`
}

// QuantilesJSON renders stats.Quantiles with stable field names.
type QuantilesJSON struct {
	P1  time.Duration `json:"p1_ns"`
	P50 time.Duration `json:"p50_ns"`
	P80 time.Duration `json:"p80_ns"`
	P90 time.Duration `json:"p90_ns"`
	P95 time.Duration `json:"p95_ns"`
	P98 time.Duration `json:"p98_ns"`
	P99 time.Duration `json:"p99_ns"`
}

func quantilesJSON(q stats.Quantiles) QuantilesJSON {
	return QuantilesJSON{P1: q.P1, P50: q.P50, P80: q.P80, P90: q.P90, P95: q.P95, P98: q.P98, P99: q.P99}
}

// Client runs measurement sessions over a Transport it does not own.
type Client struct {
	tr  transport.Transport
	cfg ClientConfig
	mac *MAC

	token uint64

	out     []byte // reusable send buffer
	in      []byte // reusable receive buffer
	pad     []byte // zero payload padding
	hparams [helloParamsLen]byte
	hdr     Header // reusable decode scratch
	bad     int
	dups    int

	// Observability (nil-safe no-ops unless SetObserver installs them).
	obsSent     *obs.Counter
	obsReceived *obs.Counter
	obsLate     *obs.Counter
	obsLost     *obs.Counter
	obsBad      *obs.Counter
	obsRTT      *obs.Histogram
}

// NewClient creates a client speaking over tr.
func NewClient(tr transport.Transport, cfg ClientConfig) *Client {
	cfg.fill()
	return &Client{
		tr:  tr,
		cfg: cfg,
		mac: NewMAC(cfg.Key),
		out: make([]byte, 0, HeaderLen+cfg.PayloadLen),
		in:  make([]byte, MaxPacketLen),
		pad: make([]byte, cfg.PayloadLen),
	}
}

// SetObserver registers the client's metrics — including the
// rtt_after_timeout counter — on reg. Call before Run.
func (c *Client) SetObserver(reg *obs.Registry) {
	c.obsSent = reg.Counter("rtt.client.sent")
	c.obsReceived = reg.Counter("rtt.client.received")
	c.obsLate = reg.Counter("rtt.client.rtt_after_timeout")
	c.obsLost = reg.Counter("rtt.client.lost")
	c.obsBad = reg.Counter("rtt.client.bad_packets")
	c.obsRTT = reg.Histogram("rtt.client.rtt")
}

// Run performs one full session: handshake, Count isochronous probes, drain
// window, close. It is synchronous and drives the transport's Recv path, so
// over a SimTransport link it advances virtual time deterministically.
func (c *Client) Run() (*Result, error) {
	if err := c.handshake(); err != nil {
		return nil, err
	}
	probes := make([]Probe, c.cfg.Count)
	interval := transport.Time(c.cfg.Interval)
	base := c.tr.Now() + interval // first send one interval after handshake
	var lastSend transport.Time
	for i := range probes {
		target := base + transport.Time(i)*interval
		c.drainUntil(probes, i, target)
		now := c.tr.Now()
		probes[i] = Probe{Seq: uint64(i), Sent: int64(now)}
		h := Header{Type: TypeEchoRequest, Token: c.token, Seq: uint64(i), CTime: int64(now)}
		c.out = AppendPacket(c.out[:0], c.mac, &h, c.pad)
		if err := c.tr.SendTo(c.cfg.Server, c.out); err != nil {
			return nil, fmt.Errorf("rtt: send probe %d: %w", i, err)
		}
		lastSend = now
		c.obsSent.Inc()
	}
	c.drainUntil(probes, len(probes), lastSend+transport.Time(c.cfg.Wait))
	c.sendClose()
	return c.collect(probes), nil
}

// handshake opens the session: hello out, accept back, token stored.
func (c *Client) handshake() error {
	nonce := xrand.Hash(c.cfg.Seed, siteNonce)
	var lastErr error = transport.ErrDeadlineExceeded
	for try := 0; try < c.cfg.HandshakeTries; try++ {
		now := c.tr.Now()
		h := Header{Type: TypeHello, Seq: nonce, CTime: int64(now)}
		c.out = AppendPacket(c.out[:0], c.mac, &h, appendHelloParams(c.hparams[:0], c.cfg.PayloadLen))
		if err := c.tr.SendTo(c.cfg.Server, c.out); err != nil {
			return fmt.Errorf("rtt: send hello: %w", err)
		}
		deadline := now + transport.Time(c.cfg.HandshakeTimeout)
		for {
			n, _, _, err := c.tr.Recv(c.in, deadline)
			if err != nil {
				if errors.Is(err, transport.ErrDeadlineExceeded) {
					lastErr = err
					break
				}
				return fmt.Errorf("rtt: handshake recv: %w", err)
			}
			if _, err := DecodePacket(c.in[:n], c.mac, &c.hdr); err != nil {
				c.bad++
				c.obsBad.Inc()
				continue
			}
			if c.hdr.Type == TypeAccept && c.hdr.Seq == nonce {
				c.token = c.hdr.Token
				return nil
			}
		}
	}
	return fmt.Errorf("rtt: no accept after %d hellos: %w", c.cfg.HandshakeTries, lastErr)
}

// drainUntil receives replies until the absolute deadline on the client
// clock, recording each against its probe. sent bounds which sequence
// numbers can legitimately answer.
func (c *Client) drainUntil(probes []Probe, sent int, deadline transport.Time) {
	for {
		if c.tr.Now() >= deadline {
			return
		}
		n, _, at, err := c.tr.Recv(c.in, deadline)
		if err != nil {
			// Deadline reached, or the transport is gone; either way the
			// schedule moves on.
			return
		}
		c.record(probes, sent, c.in[:n], at)
	}
}

// record matches one arriving packet to its probe.
func (c *Client) record(probes []Probe, sent int, data []byte, at transport.Time) {
	if _, err := DecodePacket(data, c.mac, &c.hdr); err != nil {
		c.bad++
		c.obsBad.Inc()
		return
	}
	if c.hdr.Type != TypeEchoReply || c.hdr.Token != c.token {
		return
	}
	seq := c.hdr.Seq
	if seq >= uint64(sent) {
		return // reply to a probe not sent yet
	}
	p := &probes[seq]
	if p.Received {
		p.Dups++
		c.dups++
		return
	}
	p.Received = true
	p.RecvAt = int64(at)
	p.RTT = time.Duration(int64(at) - c.hdr.CTime)
	p.ServerProc = time.Duration(c.hdr.SSend - c.hdr.SRecv)
	p.SendOWD = time.Duration(c.hdr.SRecv - c.hdr.CTime)
	p.RecvOWD = time.Duration(int64(at) - c.hdr.SSend)
	p.AfterTimeout = p.RTT > c.cfg.Timeout
	c.obsReceived.Inc()
	c.obsRTT.Observe(p.RTT)
	if p.AfterTimeout {
		c.obsLate.Inc()
	}
}

// sendClose tells the server the session is done (best effort).
func (c *Client) sendClose() {
	h := Header{Type: TypeClose, Token: c.token, CTime: int64(c.tr.Now())}
	c.out = AppendPacket(c.out[:0], c.mac, &h, nil)
	c.tr.SendTo(c.cfg.Server, c.out)
}

// collect summarizes the session.
func (c *Client) collect(probes []Probe) *Result {
	r := &Result{Sent: len(probes), Probes: probes, BadPackets: c.bad, Dups: c.dups}
	rtts := make([]time.Duration, 0, len(probes))
	for i := range probes {
		p := &probes[i]
		switch {
		case p.Received:
			r.Received++
			rtts = append(rtts, p.RTT)
			if p.AfterTimeout {
				r.RTTAfterTimeout++
			}
		default:
			r.Lost++
			c.obsLost.Inc()
		}
	}
	// A session can legitimately receive nothing (server gone mid-session,
	// total loss): report lost=N with zero quantiles rather than asking
	// stats for percentiles of an empty sample.
	if len(rtts) > 0 {
		r.RTT = quantilesJSON(stats.ComputeQuantiles(rtts))
	}
	return r
}
