package rtt

import (
	"bytes"
	"testing"
)

// FuzzSessionPacket throws arbitrary bytes at the session packet decoder and
// checks three invariants on every input that parses:
//
//   - encode/decode round-trip symmetry: re-encoding the parsed header and
//     payload reproduces the input byte for byte (the format has no
//     redundant encodings);
//   - HMAC soundness: any single-byte change to an accepted packet is
//     rejected, as is verification under a different key;
//   - and, implicitly, that no input crashes the decoder.
func FuzzSessionPacket(f *testing.F) {
	key := []byte("fuzz-session-key")
	mac := NewMAC(key)

	// Seeds: every packet type the protocol uses, a payload-carrying echo,
	// and some near-misses.
	f.Add(AppendPacket(nil, mac, &Header{Type: TypeHello, Seq: 42, CTime: 1000},
		appendHelloParams(nil, 64)))
	f.Add(AppendPacket(nil, mac, &Header{Type: TypeAccept, Token: 7, Seq: 42, SRecv: 5, SSend: 6}, nil))
	f.Add(AppendPacket(nil, mac, &Header{Type: TypeEchoRequest, Token: 7, Seq: 3, CTime: 12345},
		make([]byte, 128)))
	f.Add(AppendPacket(nil, mac, &Header{Type: TypeEchoReply, Token: 7, Seq: 3,
		CTime: 12345, SRecv: 20000, SSend: 20100}, make([]byte, 128)))
	f.Add(AppendPacket(nil, mac, &Header{Type: TypeClose, Token: 7}, nil))
	f.Add([]byte("RTT1 but far too short"))
	f.Add(make([]byte, HeaderLen))
	f.Add(bytes.Repeat([]byte{0xA5}, HeaderLen+32))

	otherMAC := NewMAC([]byte("a-different-key"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		payload, err := DecodePacket(data, mac, &h)
		if err != nil {
			return
		}
		// Round-trip symmetry.
		re := AppendPacket(nil, mac, &h, payload)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n in %x\nout %x", data, re)
		}
		var h2 Header
		payload2, err := DecodePacket(re, mac, &h2)
		if err != nil {
			t.Fatalf("re-encoded packet rejected: %v", err)
		}
		if h2 != h || !bytes.Equal(payload2, payload) {
			t.Fatalf("round-trip asymmetry: %+v vs %+v", h, h2)
		}
		// A different key must reject the packet.
		if _, err := DecodePacket(data, otherMAC, &h2); err == nil {
			t.Fatal("packet verified under a different key")
		}
		// Any single-byte change must be rejected (magic or MAC failure).
		tampered := bytes.Clone(data)
		for _, i := range []int{0, 4, 8, macOff, len(data) - 1} {
			tampered[i] ^= 0x01
			if _, err := DecodePacket(tampered, mac, &h2); err == nil {
				t.Fatalf("tampered byte %d accepted", i)
			}
			tampered[i] ^= 0x01
		}
	})
}
