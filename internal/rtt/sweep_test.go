package rtt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timeouts/internal/ipaddr"
	"timeouts/internal/simnet"
	"timeouts/internal/transport"
)

// clockTransport is a wall-clocked Transport stub with a hand-advanced
// clock: packets are injected by calling the registered handler directly,
// and nothing ever arrives on its own — exactly the "listener gone quiet"
// condition the sweep regression pins down.
type clockTransport struct {
	now     atomic.Int64
	mu      sync.Mutex
	h       transport.Handler
	replies int
}

func (c *clockTransport) LocalAddr() transport.Addr { return transport.Addr{Port: 2112} }
func (c *clockTransport) Now() transport.Time       { return transport.Time(c.now.Load()) }
func (c *clockTransport) WallClockSafe() bool       { return true }

func (c *clockTransport) SendTo(to transport.Addr, pkt []byte) error {
	c.mu.Lock()
	c.replies++
	c.mu.Unlock()
	return nil
}

func (c *clockTransport) Recv(buf []byte, deadline transport.Time) (int, transport.Addr, transport.Time, error) {
	return 0, transport.Addr{}, 0, transport.ErrDeadlineExceeded
}

func (c *clockTransport) SetHandler(h transport.Handler) {
	c.mu.Lock()
	c.h = h
	c.mu.Unlock()
}

func (c *clockTransport) Close() error { return nil }

// deliver injects one packet through the registered handler, as the pump
// goroutine of a live transport would.
func (c *clockTransport) deliver(at transport.Time, from transport.Addr, data []byte) {
	c.mu.Lock()
	h := c.h
	c.mu.Unlock()
	if h != nil {
		h(at, from, data, 1)
	}
}

// TestServerSweepReclaimsIdleSessionsWithoutTraffic pins the fix for lazy-
// only expiry: before it, a server that stopped hearing packets held every
// expired session (and its MaxConns slot, and its (from, nonce) dedup
// entry) forever, because the sweep only ran on packet arrival. The
// periodic sweeper must reclaim them with no new traffic at all.
func TestServerSweepReclaimsIdleSessionsWithoutTraffic(t *testing.T) {
	tr := &clockTransport{}
	srv := NewServer(tr, ServerConfig{
		Key:           testKey,
		IdleTimeout:   30 * time.Millisecond,
		SweepInterval: 2 * time.Millisecond,
	})
	srv.Start()
	defer srv.Close()

	mac := NewMAC(testKey)
	var pkt []byte
	for i := 0; i < 3; i++ {
		h := Header{Type: TypeHello, Seq: uint64(100 + i), CTime: 1}
		pkt = AppendPacket(pkt[:0], mac, &h, appendHelloParams(nil, 0))
		tr.deliver(tr.Now(), transport.Addr{IP: ipaddr.Addr(0x0a000001 + uint32(i)), Port: 40000}, pkt)
	}
	if got := srv.Conns(); got != 3 {
		t.Fatalf("sessions after hellos = %d, want 3", got)
	}

	// Advance the wall clock past the idle timeout and deliver nothing.
	// Only the background sweeper can reclaim the sessions now.
	tr.now.Store(int64(time.Second))
	deadline := time.Now().Add(2 * time.Second)
	for srv.Conns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions still held %v after expiry with no traffic: conns=%d",
				2*time.Second, srv.Conns())
		}
		time.Sleep(time.Millisecond)
	}

	// The reclaimed slots must be usable again: a fresh hello is accepted.
	h := Header{Type: TypeHello, Seq: 999, CTime: 2}
	pkt = AppendPacket(pkt[:0], mac, &h, appendHelloParams(nil, 0))
	tr.deliver(tr.Now(), transport.Addr{IP: ipaddr.Addr(0x0a0000ff), Port: 40001}, pkt)
	if got := srv.Conns(); got != 1 {
		t.Fatalf("sessions after post-sweep hello = %d, want 1", got)
	}
}

// TestServerSimTransportStartsNoSweeper pins that Start on a transport
// without a concurrently readable clock leaves the sweeper off: sim runs
// must stay deterministic, with no goroutine reading the sim clock.
func TestServerSimTransportStartsNoSweeper(t *testing.T) {
	sched := &simnet.Scheduler{}
	st, ct := transport.NewSimLink(sched, transport.Addr{Port: 2112}, transport.Addr{Port: 49000},
		func(from, to transport.Addr, size int, at transport.Time) transport.Time {
			return transport.Time(time.Millisecond)
		})
	defer st.Close()
	defer ct.Close()
	srv := NewServer(st, ServerConfig{Key: testKey})
	srv.Start()
	defer srv.Close()
	if srv.sweepStop != nil {
		t.Fatal("sweeper started on a non-wall-clocked transport")
	}
}
