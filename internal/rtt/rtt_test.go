package rtt

import (
	"reflect"
	"testing"
	"time"

	"timeouts/internal/faults"
	"timeouts/internal/obs"
	"timeouts/internal/simnet"
	"timeouts/internal/transport"
)

var testKey = []byte("rtt-test-shared-key")

// linkSession runs one client/server session over a deterministic sim link
// with a fixed one-way delay, returning the result and the server.
func linkSession(t *testing.T, delay time.Duration, cfg ClientConfig, scfg ServerConfig) (*Result, *Server) {
	t.Helper()
	sched := &simnet.Scheduler{}
	sa := transport.Addr{Port: 2112}
	ca := transport.Addr{Port: 49000}
	st, ct := transport.NewSimLink(sched, sa, ca,
		func(from, to transport.Addr, size int, at transport.Time) transport.Time {
			return transport.Time(delay)
		})
	scfg.Key = testKey
	srv := NewServer(st, scfg)
	srv.Start()
	cfg.Server = sa
	cfg.Key = testKey
	cli := NewClient(ct, cfg)
	res, err := cli.Run()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	// Deliver the in-flight close before reading server state.
	sched.RunUntil(sched.Now() + transport.Time(2*delay))
	return res, srv
}

func TestSimLinkSessionExact(t *testing.T) {
	const delay = 20 * time.Millisecond
	cfg := ClientConfig{
		Count:    16,
		Interval: 50 * time.Millisecond,
		Timeout:  100 * time.Millisecond,
		Wait:     500 * time.Millisecond,
	}
	res, srv := linkSession(t, delay, cfg, ServerConfig{Seed: 7})

	if res.Sent != 16 || res.Received != 16 || res.Lost != 0 || res.RTTAfterTimeout != 0 {
		t.Fatalf("counts: %+v", res)
	}
	for i, p := range res.Probes {
		if !p.Received {
			t.Fatalf("probe %d not received", i)
		}
		// The link is symmetric and the server turns around in zero virtual
		// time, so every delay decomposes exactly.
		if p.RTT != 2*delay {
			t.Errorf("probe %d RTT = %v, want %v", i, p.RTT, 2*delay)
		}
		if p.SendOWD != delay || p.RecvOWD != delay {
			t.Errorf("probe %d OWD = %v/%v, want %v each way", i, p.SendOWD, p.RecvOWD, delay)
		}
		if p.ServerProc != 0 {
			t.Errorf("probe %d server turnaround = %v, want 0", i, p.ServerProc)
		}
		if i > 0 {
			if got := p.Sent - res.Probes[i-1].Sent; got != int64(cfg.Interval) {
				t.Errorf("probe %d send spacing = %dns, want %v", i, got, cfg.Interval)
			}
		}
	}
	if res.RTT.P50 != 2*delay || res.RTT.P99 != 2*delay {
		t.Errorf("quantiles: %+v", res.RTT)
	}
	if srv.Hellos() != 1 || srv.Echoes() != 16 || srv.AuthFailures() != 0 {
		t.Errorf("server: hellos=%d echoes=%d authfail=%d", srv.Hellos(), srv.Echoes(), srv.AuthFailures())
	}
	if srv.Conns() != 0 {
		t.Errorf("server holds %d conns after close", srv.Conns())
	}
}

// TestSimLinkSessionDeterministic runs the identical session twice and
// demands identical results — the sim-as-oracle property the live plane's
// differential tests lean on.
func TestSimLinkSessionDeterministic(t *testing.T) {
	cfg := ClientConfig{Count: 12, Interval: 30 * time.Millisecond, Timeout: 80 * time.Millisecond}
	a, _ := linkSession(t, 17*time.Millisecond, cfg, ServerConfig{Seed: 3})
	b, _ := linkSession(t, 17*time.Millisecond, cfg, ServerConfig{Seed: 3})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same configuration, different results:\n%+v\n%+v", a, b)
	}
}

// TestSimLinkLateRepliesCounted is the paper's core semantics on the sim
// oracle: every reply outlives the per-probe timeout, and every one is
// reported late — rtt_after_timeout — rather than lost.
func TestSimLinkLateRepliesCounted(t *testing.T) {
	const delay = 150 * time.Millisecond // RTT 300ms vs 100ms timeout
	cfg := ClientConfig{
		Count:    8,
		Interval: 200 * time.Millisecond,
		Timeout:  100 * time.Millisecond,
		Wait:     time.Second,
	}
	res, _ := linkSession(t, delay, cfg, ServerConfig{})
	if res.Received != 8 || res.Lost != 0 {
		t.Fatalf("late replies mislaid: %+v", res)
	}
	if res.RTTAfterTimeout != 8 {
		t.Fatalf("rtt_after_timeout = %d, want 8", res.RTTAfterTimeout)
	}
	for i, p := range res.Probes {
		if !p.AfterTimeout || p.RTT != 2*delay {
			t.Errorf("probe %d: after_timeout=%v rtt=%v", i, p.AfterTimeout, p.RTT)
		}
	}
}

// TestSimLinkDroppedProbes interposes the faulty wrapper on the client's
// inbound path and checks losses match the plan's deterministic drop
// decisions packet for packet.
func TestSimLinkDroppedProbes(t *testing.T) {
	const count = 24
	plan := &faults.Plan{Seed: 5, Wire: faults.WireConfig{DropRate: 0.25}}
	if plan.WireDropFor(0, 0) {
		t.Fatal("test seed drops the accept; pick another seed")
	}
	// Client inbound arrivals: index 0 is the accept, 1..count the echo
	// replies in order (the fixed-delay link cannot reorder).
	wantLost := 0
	for i := 1; i <= count; i++ {
		if plan.WireDropFor(uint64(i), 0) {
			wantLost++
		}
	}
	if wantLost == 0 {
		t.Fatal("test seed drops nothing; pick another seed")
	}

	sched := &simnet.Scheduler{}
	sa := transport.Addr{Port: 2112}
	ca := transport.Addr{Port: 49000}
	st, ct := transport.NewSimLink(sched, sa, ca,
		func(_, _ transport.Addr, _ int, _ transport.Time) transport.Time {
			return transport.Time(5 * time.Millisecond)
		})
	srv := NewServer(st, ServerConfig{Key: testKey})
	srv.Start()
	faulty := transport.NewFaulty(ct, plan)
	cli := NewClient(faulty, ClientConfig{
		Server:   sa,
		Key:      testKey,
		Count:    count,
		Interval: 20 * time.Millisecond,
		Timeout:  15 * time.Millisecond,
		Wait:     200 * time.Millisecond,
	})
	res, err := cli.Run()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if res.Lost != wantLost || res.Received != count-wantLost {
		t.Fatalf("lost=%d received=%d, want lost=%d received=%d",
			res.Lost, res.Received, wantLost, count-wantLost)
	}
	if got := faulty.Dropped(); got != uint64(wantLost) {
		t.Fatalf("wrapper dropped %d, want %d", got, wantLost)
	}
	// Every request still reached the server: only replies were dropped.
	if srv.Echoes() != count {
		t.Fatalf("server echoes = %d, want %d", srv.Echoes(), count)
	}
}

// acceptOnly passes the first inbound packet (the accept) and drops every
// later one — a server that vanishes right after the handshake.
type acceptOnly struct {
	transport.Transport
	seen int
}

func (d *acceptOnly) Recv(buf []byte, deadline transport.Time) (int, transport.Addr, transport.Time, error) {
	for {
		n, from, at, err := d.Transport.Recv(buf, deadline)
		if err != nil {
			return n, from, at, err
		}
		d.seen++
		if d.seen == 1 {
			return n, from, at, nil
		}
	}
}

// TestSimLinkAllRepliesLost: the handshake succeeds but every probe reply is
// lost. The session must complete with lost=N and zero quantiles — not panic
// computing percentiles over an empty sample.
func TestSimLinkAllRepliesLost(t *testing.T) {
	const count = 6
	sched := &simnet.Scheduler{}
	sa := transport.Addr{Port: 2112}
	ca := transport.Addr{Port: 49000}
	st, ct := transport.NewSimLink(sched, sa, ca,
		func(_, _ transport.Addr, _ int, _ transport.Time) transport.Time {
			return transport.Time(5 * time.Millisecond)
		})
	srv := NewServer(st, ServerConfig{Key: testKey})
	srv.Start()
	cli := NewClient(&acceptOnly{Transport: ct}, ClientConfig{
		Server:   sa,
		Key:      testKey,
		Count:    count,
		Interval: 20 * time.Millisecond,
		Timeout:  15 * time.Millisecond,
		Wait:     100 * time.Millisecond,
	})
	res, err := cli.Run()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if res.Sent != count || res.Received != 0 || res.Lost != count {
		t.Fatalf("counts: %+v", res)
	}
	if res.RTT != (QuantilesJSON{}) {
		t.Fatalf("quantiles over zero replies: %+v", res.RTT)
	}
	if srv.Echoes() != count {
		t.Fatalf("server echoes = %d, want %d (requests travel clean)", srv.Echoes(), count)
	}
}

// TestServerDuplicateHelloReusesSession: a handshake retry — same source,
// same nonce — must be answered with the existing session's token, not mint
// a second session that leaks against MaxConns.
func TestServerDuplicateHelloReusesSession(t *testing.T) {
	sched := &simnet.Scheduler{}
	sa := transport.Addr{Port: 2112}
	ca := transport.Addr{Port: 49000}
	st, ct := transport.NewSimLink(sched, sa, ca, nil)
	srv := NewServer(st, ServerConfig{Key: testKey, Seed: 11})
	srv.Start()

	mac := NewMAC(testKey)
	var out []byte
	hello := func(nonce uint64) {
		t.Helper()
		h := Header{Type: TypeHello, Seq: nonce, CTime: int64(ct.Now())}
		out = AppendPacket(out[:0], mac, &h, appendHelloParams(nil, 0))
		if err := ct.SendTo(sa, out); err != nil {
			t.Fatalf("hello: %v", err)
		}
	}
	accept := func() Header {
		t.Helper()
		buf := make([]byte, MaxPacketLen)
		n, _, _, err := ct.Recv(buf, ct.Now()+time.Second)
		if err != nil {
			t.Fatalf("accept: %v", err)
		}
		var hdr Header
		if _, err := DecodePacket(buf[:n], mac, &hdr); err != nil {
			t.Fatalf("accept decode: %v", err)
		}
		if hdr.Type != TypeAccept {
			t.Fatalf("accept type = %d", hdr.Type)
		}
		return hdr
	}

	hello(42)
	hello(42) // retry after a "lost" accept
	first, second := accept(), accept()
	if first.Token != second.Token {
		t.Fatalf("retried hello minted a new token: %d vs %d", first.Token, second.Token)
	}
	if srv.Conns() != 1 || srv.Hellos() != 1 {
		t.Fatalf("retry leaked a session: conns=%d hellos=%d", srv.Conns(), srv.Hellos())
	}

	// A different nonce from the same source is a genuinely new session.
	hello(43)
	third := accept()
	if third.Token == first.Token {
		t.Fatal("distinct nonce reused the old session")
	}
	if srv.Conns() != 2 || srv.Hellos() != 2 {
		t.Fatalf("conns=%d hellos=%d, want 2 each", srv.Conns(), srv.Hellos())
	}
}

// TestSimLinkAuthRejection: a client with the wrong key never completes a
// handshake, and the server counts the rejects without ever answering.
func TestSimLinkAuthRejection(t *testing.T) {
	sched := &simnet.Scheduler{}
	sa := transport.Addr{Port: 2112}
	ca := transport.Addr{Port: 49000}
	st, ct := transport.NewSimLink(sched, sa, ca, nil)
	srv := NewServer(st, ServerConfig{Key: testKey})
	srv.Start()
	cli := NewClient(ct, ClientConfig{
		Server:           sa,
		Key:              []byte("not-the-key"),
		HandshakeTimeout: 10 * time.Millisecond,
		HandshakeTries:   2,
	})
	if _, err := cli.Run(); err == nil {
		t.Fatal("session succeeded with the wrong key")
	}
	if srv.AuthFailures() != 2 {
		t.Fatalf("server auth failures = %d, want 2", srv.AuthFailures())
	}
	if srv.Hellos() != 0 || srv.Conns() != 0 {
		t.Fatalf("unauthenticated hello accepted: hellos=%d conns=%d", srv.Hellos(), srv.Conns())
	}
}

// udpPair opens a loopback server/client transport pair.
func udpPair(t *testing.T) (*transport.UDPTransport, *transport.UDPTransport) {
	t.Helper()
	st, err := transport.NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server socket: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	ct, err := transport.NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("client socket: %v", err)
	}
	t.Cleanup(func() { ct.Close() })
	return st, ct
}

// TestLoopbackUDPSession is the live-plane integration test: a full session
// over real UDP sockets on 127.0.0.1 — handshake, isochronous round trips,
// monotone sequencing and timestamp sanity.
func TestLoopbackUDPSession(t *testing.T) {
	st, ct := udpPair(t)
	reg := obs.NewRegistry()
	srv := NewServer(st, ServerConfig{Key: testKey})
	srv.SetObserver(reg)
	srv.Start()

	const count = 20
	cli := NewClient(ct, ClientConfig{
		Server:     st.LocalAddr(),
		Key:        testKey,
		Count:      count,
		Interval:   2 * time.Millisecond,
		Timeout:    250 * time.Millisecond,
		Wait:       2 * time.Second,
		PayloadLen: 64,
	})
	cli.SetObserver(reg)
	res, err := cli.Run()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if res.Sent != count || res.Received != count || res.Lost != 0 {
		t.Fatalf("loopback lost packets: %+v", res)
	}
	for i, p := range res.Probes {
		if p.Seq != uint64(i) {
			t.Fatalf("probe %d has seq %d", i, p.Seq)
		}
		if p.RTT <= 0 {
			t.Errorf("probe %d RTT = %v", i, p.RTT)
		}
		if p.RecvAt < p.Sent {
			t.Errorf("probe %d received before sent: %d < %d", i, p.RecvAt, p.Sent)
		}
		if i > 0 {
			if p.Sent <= res.Probes[i-1].Sent {
				t.Errorf("send times not monotone at probe %d", i)
			}
			// Server receive stamp reconstructed on the server clock.
			srecv := func(q Probe) int64 { return q.Sent + int64(q.SendOWD) }
			if srecv(p) < srecv(res.Probes[i-1]) {
				t.Errorf("server receive stamps not monotone at probe %d", i)
			}
		}
	}
	if srv.Hellos() != 1 || srv.Echoes() != count {
		t.Errorf("server: hellos=%d echoes=%d", srv.Hellos(), srv.Echoes())
	}
	// The close travels async; give the pump a moment to apply it.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Conns() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Conns() != 0 {
		t.Errorf("server holds %d conns after close", srv.Conns())
	}
	snap := reg.Snapshot()
	if got := counterValue(t, snap, "rtt.client.sent"); got != count {
		t.Errorf("rtt.client.sent = %d", got)
	}
	if got := counterValue(t, snap, "rtt.server.echoes"); got != count {
		t.Errorf("rtt.server.echoes = %d", got)
	}
}

// TestLoopbackDroppedProbes interposes the faulty wrapper on a real socket:
// losses stay consistent (sent = received + lost) and every loss is one the
// wrapper injected — the server answered everything.
func TestLoopbackDroppedProbes(t *testing.T) {
	st, ct := udpPair(t)
	srv := NewServer(st, ServerConfig{Key: testKey})
	srv.Start()

	const count = 40
	plan := &faults.Plan{Seed: 5, Wire: faults.WireConfig{DropRate: 0.25}}
	faulty := transport.NewFaulty(ct, plan)
	cli := NewClient(faulty, ClientConfig{
		Server:   st.LocalAddr(),
		Key:      testKey,
		Count:    count,
		Interval: 2 * time.Millisecond,
		Timeout:  100 * time.Millisecond,
		Wait:     2 * time.Second,
	})
	res, err := cli.Run()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if res.Received+res.Lost != count {
		t.Fatalf("received %d + lost %d != sent %d", res.Received, res.Lost, count)
	}
	if res.Lost == 0 {
		t.Fatal("drop plan injected no losses")
	}
	if faulty.Dropped() < uint64(res.Lost) {
		t.Fatalf("wrapper dropped %d < client lost %d", faulty.Dropped(), res.Lost)
	}
	if srv.Echoes() != count {
		t.Fatalf("server echoes = %d, want %d (requests travel clean)", srv.Echoes(), count)
	}
}

// delayedSender defers every send by a fixed wall-clock delay — a
// delayed-echo server for the timeout-semantics regression test.
type delayedSender struct {
	transport.Transport
	delay time.Duration
}

func (d *delayedSender) SendTo(to transport.Addr, pkt []byte) error {
	time.Sleep(d.delay)
	return d.Transport.SendTo(to, pkt)
}

// TestUDPLateReplyAfterTimeout is the regression test for satellite 4:
// over real sockets, a reply that misses the per-probe timeout must land in
// rtt_after_timeout, not in lost — the read deadline bounds one Recv, never
// the listening.
func TestUDPLateReplyAfterTimeout(t *testing.T) {
	st, ct := udpPair(t)
	srv := NewServer(&delayedSender{Transport: st, delay: 120 * time.Millisecond},
		ServerConfig{Key: testKey})
	srv.Start()

	const count = 3
	cli := NewClient(ct, ClientConfig{
		Server:           st.LocalAddr(),
		Key:              testKey,
		Count:            count,
		Interval:         60 * time.Millisecond,
		Timeout:          50 * time.Millisecond,
		Wait:             3 * time.Second,
		HandshakeTimeout: 2 * time.Second,
	})
	res, err := cli.Run()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if res.Lost != 0 {
		t.Fatalf("late replies dropped as lost: %+v", res)
	}
	if res.Received != count || res.RTTAfterTimeout != count {
		t.Fatalf("received=%d rtt_after_timeout=%d, want %d of each",
			res.Received, res.RTTAfterTimeout, count)
	}
	for i, p := range res.Probes {
		if !p.AfterTimeout || p.RTT <= 50*time.Millisecond {
			t.Errorf("probe %d: after_timeout=%v rtt=%v", i, p.AfterTimeout, p.RTT)
		}
	}
}

// counterValue digs one counter out of a snapshot.
func counterValue(t *testing.T, snap obs.Snapshot, name string) uint64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q not in snapshot", name)
	return 0
}
