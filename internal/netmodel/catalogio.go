package netmodel

import (
	"encoding/json"
	"fmt"
	"io"
)

// Catalog (de)serialization: populations are configurable, so a study can
// model a different Internet — more cellular, no satellites, a custom AS
// mix — by loading a JSON catalog instead of editing code. cmd/surveyor and
// cmd/zmapscan accept `-catalog file.json`.

// WriteCatalog serializes a catalog as indented JSON.
func WriteCatalog(w io.Writer, specs []ASSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(specs); err != nil {
		return fmt.Errorf("netmodel: encoding catalog: %w", err)
	}
	return nil
}

// ReadCatalog parses a JSON catalog and validates it.
func ReadCatalog(r io.Reader) ([]ASSpec, error) {
	var specs []ASSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("netmodel: decoding catalog: %w", err)
	}
	if err := ValidateCatalog(specs); err != nil {
		return nil, err
	}
	return specs, nil
}

// ValidateCatalog checks a catalog for the invariants the population
// generator relies on.
func ValidateCatalog(specs []ASSpec) error {
	if len(specs) == 0 {
		return fmt.Errorf("netmodel: catalog is empty")
	}
	seen := make(map[uint32]bool, len(specs))
	total := 0.0
	for i, s := range specs {
		if s.AS.ASN == 0 {
			return fmt.Errorf("netmodel: catalog entry %d has no ASN", i)
		}
		if seen[s.AS.ASN] {
			return fmt.Errorf("netmodel: duplicate ASN %d", s.AS.ASN)
		}
		seen[s.AS.ASN] = true
		if s.Weight <= 0 {
			return fmt.Errorf("netmodel: AS%d has non-positive weight %v", s.AS.ASN, s.Weight)
		}
		total += s.Weight
		if s.CellularFrac < 0 || s.CellularFrac > 1 {
			return fmt.Errorf("netmodel: AS%d CellularFrac %v out of [0,1]", s.AS.ASN, s.CellularFrac)
		}
		if s.CongestionLevel < 0 || s.CongestionLevel > 1 {
			return fmt.Errorf("netmodel: AS%d CongestionLevel %v out of [0,1]", s.AS.ASN, s.CongestionLevel)
		}
		if s.Responsiveness < 0 || s.Responsiveness > 0.87 {
			// The late-joiner band occupies (R, R*1.15]; keep it below 1.
			return fmt.Errorf("netmodel: AS%d Responsiveness %v out of [0,0.87]", s.AS.ASN, s.Responsiveness)
		}
		if s.SatBaseMS < 0 || s.SatSpreadMS < 0 || s.SatQueueCapMS < 0 {
			return fmt.Errorf("netmodel: AS%d has negative satellite parameters", s.AS.ASN)
		}
	}
	if total <= 0 {
		return fmt.Errorf("netmodel: catalog has no weight")
	}
	return nil
}
