package netmodel

import (
	"testing"

	"timeouts/internal/xrand"
)

// denseProbePlan builds a deterministic, time-monotone sequence of
// (cellular profile, probe time) pairs that revisits addresses at spacings
// straddling every state-machine regime: mid-wake, active, idle-expired,
// and long-evicted.
func denseProbePlan(p *Population, n int) []struct {
	pr Profile
	t  float64
} {
	var cell []Profile
	for i := 0; i < p.NumAddrs() && len(cell) < 64; i++ {
		pr := p.Profile(p.AddrAt(i))
		if pr.Responsive && pr.Class == ClassCellular {
			cell = append(cell, pr)
		}
	}
	plan := make([]struct {
		pr Profile
		t  float64
	}, 0, n)
	t := 1.0
	for i := 0; i < n; i++ {
		r := xrand.Hash(99, uint64(i))
		// Steps from 0.25s (inside a wake) through minutes (idle expiry)
		// to multi-hour gaps (horizon eviction in the dense table).
		switch r % 5 {
		case 0:
			t += 0.25
		case 1:
			t += 3
		case 2:
			t += 45
		case 3:
			t += 200
		case 4:
			t += 9000
		}
		plan = append(plan, struct {
			pr Profile
			t  float64
		}{cell[int(r>>8)%len(cell)], t})
	}
	return plan
}

// TestDenseRadioStateMatchesMap drives the map-backed and dense-table radio
// state machines through an identical probe schedule and requires
// bit-identical holds — including across table growth and horizon eviction.
func TestDenseRadioStateMatchesMap(t *testing.T) {
	p := testPop(512)
	plan := denseProbePlan(p, 20000)
	if len(plan) == 0 {
		t.Skip("no cellular hosts")
	}
	mm := NewModel(p)
	dm := NewModel(p)
	dm.SetDense(true)
	if !dm.Dense() || mm.Dense() {
		t.Fatal("Dense() flag wrong")
	}
	for i, step := range plan {
		hm := mm.wakeHold(&step.pr, step.t)
		hd := dm.wakeHold(&step.pr, step.t)
		if hm != hd {
			t.Fatalf("step %d (addr %s t=%v): map hold %v, dense hold %v", i, step.pr.Addr, step.t, hm, hd)
		}
	}
	if dm.denseRadio.count >= len(plan)/2 {
		t.Fatalf("dense table holds %d entries after %d probes; horizon pruning is not bounding it", dm.denseRadio.count, len(plan))
	}
}

// TestDenseResetMatchesFreshModel is the satellite regression: a mid-run
// ResetRadioState must leave the model byte-identical to a brand-new one,
// in both state representations, and dense reset must not degrade into a
// rebuild (it drops the bounded table, O(1)).
func TestDenseResetMatchesFreshModel(t *testing.T) {
	p := testPop(512)
	plan := denseProbePlan(p, 4000)
	if len(plan) == 0 {
		t.Skip("no cellular hosts")
	}
	for _, dense := range []bool{false, true} {
		used := NewModel(p)
		used.SetDense(dense)
		for _, step := range plan[:2000] {
			used.wakeHold(&step.pr, step.t)
		}
		used.ResetRadioState()

		fresh := NewModel(p)
		fresh.SetDense(dense)
		for i, step := range plan[2000:] {
			hu := used.wakeHold(&step.pr, step.t)
			hf := fresh.wakeHold(&step.pr, step.t)
			if hu != hf {
				t.Fatalf("dense=%v step %d: reset model hold %v, fresh model hold %v", dense, i, hu, hf)
			}
		}
	}
}
