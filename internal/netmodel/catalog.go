// Package netmodel synthesizes the Internet address population the study
// measures. Because the live 2015 Internet (and ISI's archived view of it)
// is not available offline, the population is generated: a catalog of
// autonomous systems — the cellular, satellite, broadband, backbone and
// datacenter networks the paper attributes latency to — each owning a range
// of /24 blocks whose per-address behavior (base latency, loss, radio
// wake-up, bufferbloat, buffered-outage flushes, broadcast responders,
// duplicate/DoS responders, firewalls) is a deterministic function of the
// population seed. Every scan of the same seeded population therefore sees
// the same hosts, which is what lets the reproduction exhibit the paper's
// central stability result: the same ~5% of addresses are slow in every scan.
package netmodel

import "timeouts/internal/ipmeta"

// ASSpec describes one autonomous system in the synthetic population: its
// identity, its share of the address space, and the behavioral mix of its
// hosts.
type ASSpec struct {
	AS ipmeta.AS

	// Weight is the AS's share of the population's address space, in
	// arbitrary units normalized over the catalog.
	Weight float64

	// CellularFrac is the fraction of responsive hosts that behave like
	// cellular devices (radio wake-up delay, deep queues, buffered outages).
	// It is 1 for pure cellular carriers, intermediate for mixed ASes such
	// as AS9829, and 0 for wireline networks.
	CellularFrac float64

	// CongestionLevel in [0,1] scales bufferbloat episode frequency and
	// depth for the AS's non-cellular hosts. Developing-region broadband
	// sits high; datacenter networks near zero.
	CongestionLevel float64

	// Responsiveness is the probability that an address in the AS hosts a
	// device that answers probes at all.
	Responsiveness float64

	// SatBaseMS/SatSpreadMS define, for satellite ASes, the minimum RTT
	// cluster (geosynchronous transit ~500 ms plus provider-specific
	// ground-segment overhead) in milliseconds. Figure 11 shows each
	// provider as a distinct cluster.
	SatBaseMS, SatSpreadMS float64

	// SatQueueCapMS caps satellite queueing delay; two providers in
	// Figure 11 (Horizon, iiNet) show near-constant 99th percentiles, as if
	// queueing were capped while the base distance varies.
	SatQueueCapMS float64
}

// DefaultCatalog returns the synthetic AS catalog. Identities and relative
// sizes follow the paper's Tables 4–6 (turtle/sleepy-turtle rankings) and
// Figure 11 (satellite providers); generic per-continent eyeball, transit
// and datacenter ASes fill out the rest of the space so that continent
// shares match Table 5's denominators.
func DefaultCatalog() []ASSpec {
	mk := func(asn uint32, owner string, typ ipmeta.AccessType, cont ipmeta.Continent) ipmeta.AS {
		return ipmeta.AS{ASN: asn, Owner: owner, Type: typ, Continent: cont}
	}
	return []ASSpec{
		// --- Cellular carriers from Tables 4 and 6, sized so the turtle
		// ranking reproduces: Telefonica Brasil ~2x the next AS.
		{AS: mk(26599, "TELEFONICA BRASIL", ipmeta.Cellular, ipmeta.SouthAmerica),
			Weight: 12, CellularFrac: 0.97, CongestionLevel: 0.5, Responsiveness: 0.28},
		{AS: mk(26615, "Tim Celular S.A.", ipmeta.Cellular, ipmeta.SouthAmerica),
			Weight: 5, CellularFrac: 0.92, CongestionLevel: 0.5, Responsiveness: 0.28},
		{AS: mk(45609, "Bharti Airtel Ltd.", ipmeta.Cellular, ipmeta.Asia),
			Weight: 4.5, CellularFrac: 0.97, CongestionLevel: 0.5, Responsiveness: 0.28},
		{AS: mk(22394, "Cellco Partnership", ipmeta.Cellular, ipmeta.NorthAmerica),
			Weight: 2, CellularFrac: 0.92, CongestionLevel: 0.3, Responsiveness: 0.28},
		{AS: mk(1257, "TELE2", ipmeta.Cellular, ipmeta.Europe),
			Weight: 2.4, CellularFrac: 0.87, CongestionLevel: 0.3, Responsiveness: 0.28},
		{AS: mk(27831, "Colombia Movil", ipmeta.Cellular, ipmeta.SouthAmerica),
			Weight: 2, CellularFrac: 0.85, CongestionLevel: 0.5, Responsiveness: 0.28},
		{AS: mk(6306, "VENEZOLAN", ipmeta.Cellular, ipmeta.SouthAmerica),
			Weight: 2.2, CellularFrac: 0.95, CongestionLevel: 0.6, Responsiveness: 0.28},
		{AS: mk(35819, "Etihad Etisalat (Mobily)", ipmeta.Cellular, ipmeta.Asia),
			Weight: 1.8, CellularFrac: 0.70, CongestionLevel: 0.4, Responsiveness: 0.28},
		{AS: mk(12430, "VODAFONE ESPANA S.A.U.", ipmeta.Cellular, ipmeta.Europe),
			Weight: 1.0, CellularFrac: 0.60, CongestionLevel: 0.3, Responsiveness: 0.28,
		},
		// AS9829 offers cellular alongside wireline; only ~30% of its
		// probed addresses are turtles (Table 4).
		{AS: mk(9829, "National Internet Backbone", ipmeta.Mixed, ipmeta.Asia),
			Weight: 6, CellularFrac: 0.35, CongestionLevel: 0.6, Responsiveness: 0.25},
		// Chinanet: enormous, overwhelmingly wireline; contributes many
		// turtles in absolute count at ~1% incidence.
		{AS: mk(4134, "Chinanet", ipmeta.Backbone, ipmeta.Asia),
			Weight: 110, CellularFrac: 0.008, CongestionLevel: 0.35, Responsiveness: 0.22},
		// Telefonica de Espana: wireline with a sleepy tail (Table 6 only).
		{AS: mk(3352, "TELEFONICA DE ESPANA", ipmeta.Broadband, ipmeta.Europe),
			Weight: 11, CellularFrac: 0.015, CongestionLevel: 0.35, Responsiveness: 0.25},

		// --- Satellite providers from Figure 11. Tiny populations with
		// distinct base-latency clusters; Horizon and iiNet get capped
		// queues (near-constant 99th percentile).
		{AS: mk(6621, "Hughes Network Systems", ipmeta.Satellite, ipmeta.NorthAmerica),
			Weight: 0.8, Responsiveness: 0.18, SatBaseMS: 560, SatSpreadMS: 60, SatQueueCapMS: 2200},
		{AS: mk(7155, "ViaSat", ipmeta.Satellite, ipmeta.NorthAmerica),
			Weight: 0.55, Responsiveness: 0.18, SatBaseMS: 620, SatSpreadMS: 50, SatQueueCapMS: 2000},
		{AS: mk(29286, "Skylogic", ipmeta.Satellite, ipmeta.Europe),
			Weight: 0.2, Responsiveness: 0.18, SatBaseMS: 700, SatSpreadMS: 80, SatQueueCapMS: 2400},
		{AS: mk(45787, "BayCity", ipmeta.Satellite, ipmeta.Oceania),
			Weight: 0.1, Responsiveness: 0.18, SatBaseMS: 660, SatSpreadMS: 70, SatQueueCapMS: 2100},
		{AS: mk(4739, "iiNet", ipmeta.Satellite, ipmeta.Oceania),
			Weight: 0.15, Responsiveness: 0.18, SatBaseMS: 600, SatSpreadMS: 300, SatQueueCapMS: 900},
		{AS: mk(56089, "On Line", ipmeta.Satellite, ipmeta.Europe),
			Weight: 0.1, Responsiveness: 0.18, SatBaseMS: 760, SatSpreadMS: 60, SatQueueCapMS: 2300},
		{AS: mk(45638, "Skymesh", ipmeta.Satellite, ipmeta.Oceania),
			Weight: 0.1, Responsiveness: 0.18, SatBaseMS: 640, SatSpreadMS: 60, SatQueueCapMS: 2200},
		{AS: mk(17495, "Telesat", ipmeta.Satellite, ipmeta.NorthAmerica),
			Weight: 0.12, Responsiveness: 0.18, SatBaseMS: 580, SatSpreadMS: 90, SatQueueCapMS: 2500},
		{AS: mk(21804, "Horizon", ipmeta.Satellite, ipmeta.NorthAmerica),
			Weight: 0.12, Responsiveness: 0.18, SatBaseMS: 540, SatSpreadMS: 260, SatQueueCapMS: 800},

		// --- Generic space: eyeball broadband, datacenter and transit per
		// continent, sized to reproduce Table 5's continent denominators
		// (Asia ~40%, Europe ~26%, North America ~25%, South America ~7%,
		// Africa ~1%, Oceania ~0.6%) and turtle shares (South America and
		// Africa congested, North America clean).
		{AS: mk(64512, "AsiaNet Broadband", ipmeta.Broadband, ipmeta.Asia),
			Weight: 250, CellularFrac: 0.012, CongestionLevel: 0.3, Responsiveness: 0.21},
		{AS: mk(64513, "EuroLink Broadband", ipmeta.Broadband, ipmeta.Europe),
			Weight: 235, CellularFrac: 0.008, CongestionLevel: 0.15, Responsiveness: 0.21},
		{AS: mk(64514, "NorthStar Cable", ipmeta.Broadband, ipmeta.NorthAmerica),
			Weight: 215, CellularFrac: 0.002, CongestionLevel: 0.08, Responsiveness: 0.21},
		{AS: mk(64515, "AndesNet", ipmeta.Broadband, ipmeta.SouthAmerica),
			Weight: 52, CellularFrac: 0.04, CongestionLevel: 0.75, Responsiveness: 0.21},
		{AS: mk(64516, "PanAfrica Online", ipmeta.Broadband, ipmeta.Africa),
			Weight: 10, CellularFrac: 0.30, CongestionLevel: 0.85, Responsiveness: 0.19},
		{AS: mk(64517, "Austral Broadband", ipmeta.Broadband, ipmeta.Oceania),
			Weight: 5.5, CellularFrac: 0.015, CongestionLevel: 0.2, Responsiveness: 0.21},
		{AS: mk(64520, "CloudPlex Hosting", ipmeta.Datacenter, ipmeta.NorthAmerica),
			Weight: 38, CongestionLevel: 0.01, Responsiveness: 0.34},
		{AS: mk(64521, "RackEuro Hosting", ipmeta.Datacenter, ipmeta.Europe),
			Weight: 20, CongestionLevel: 0.01, Responsiveness: 0.34},
		{AS: mk(64522, "AsiaColo", ipmeta.Datacenter, ipmeta.Asia),
			Weight: 12, CongestionLevel: 0.01, Responsiveness: 0.34},
	}
}
