package netmodel

import (
	"fmt"
	"time"

	"timeouts/internal/ipaddr"
	"timeouts/internal/ipmeta"
	"timeouts/internal/simnet"
	"timeouts/internal/wire"
	"timeouts/internal/xrand"
)

// Additional hash salts for per-probe draws.
const (
	saltProbeLoss = 30 + iota
	saltBcastResp
	saltSvcJitter
	saltFwJitter
	saltGwJitter
	saltDupChunk
	saltAwake
)

// propRTT is the base round-trip propagation between continents in seconds,
// indexed [vantage continent][host continent] in ipmeta order (SA, Asia,
// Europe, Africa, NA, Oceania). Symmetric.
var propRTT = [ipmeta.NumContinents][ipmeta.NumContinents]float64{
	{0.040, 0.260, 0.210, 0.290, 0.150, 0.280},
	{0.260, 0.060, 0.230, 0.280, 0.160, 0.140},
	{0.210, 0.230, 0.040, 0.160, 0.130, 0.280},
	{0.290, 0.280, 0.160, 0.060, 0.200, 0.320},
	{0.150, 0.160, 0.130, 0.200, 0.040, 0.160},
	{0.280, 0.140, 0.280, 0.320, 0.160, 0.050},
}

// PropagationRTT exposes the base inter-continent RTT (for tests and docs).
func PropagationRTT(vantage, host ipmeta.Continent) time.Duration {
	return time.Duration(propRTT[vantage][host] * float64(time.Second))
}

// hostState is the minimal per-host mutable state: cellular radio activity.
// Everything else the model does is a pure function of (seed, addr, time).
type hostState struct {
	lastActive float64 // time the radio was last carrying traffic
	wakeUntil  float64 // if > lastActive, radio is mid-wake until this time
	used       bool
}

// Model implements simnet.Fabric over a Population: it turns probe packets
// into the deliveries a 2015-Internet host population would have produced.
type Model struct {
	pop      *Population
	vantages map[ipaddr.Addr]ipmeta.Continent
	state    map[ipaddr.Addr]*hostState

	// denseRadio, when non-nil, replaces state with the bounded
	// open-addressing table (SetDense); see densestate.go for the
	// equivalence argument.
	denseRadio *radioTable

	// Per-call scratch. Respond is invoked synchronously from Send, which
	// consumes the returned slice before the next probe, so the delivery
	// slice, decoder, quote buffer and reply message are all reusable.
	// Reply *packet* buffers are not: a delivery's Data must stay valid
	// until handled (see simnet.Fabric), so those still allocate.
	dec       wire.Decoder
	deliv     []simnet.Delivery
	quote     []byte
	replyEcho wire.ICMPEcho

	// Stats counts model decisions, useful for validating population
	// composition in tests.
	Stats struct {
		EchoProbes, UDPProbes, TCPProbes uint64
		Lost, Sleepy, Woken              uint64
		BroadcastFanouts                 uint64
	}
}

// NewModel wraps a population in a fabric.
func NewModel(pop *Population) *Model {
	return &Model{
		pop:      pop,
		vantages: make(map[ipaddr.Addr]ipmeta.Continent),
		state:    make(map[ipaddr.Addr]*hostState),
	}
}

// Population returns the underlying population.
func (m *Model) Population() *Population { return m.pop }

// AddVantage registers a prober address and its continent. Probes must
// originate from registered vantages so the model can compute propagation.
func (m *Model) AddVantage(addr ipaddr.Addr, c ipmeta.Continent) {
	m.vantages[addr] = c
}

// ResetRadioState clears cellular radio state, as if all devices had been
// idle for a long time. Tools use it between independent experiments. In
// dense mode this is O(1): the bounded table is simply dropped, which is
// exactly equivalent to a fresh model (a missing entry and a long-idle
// entry behave identically in wakeHold).
func (m *Model) ResetRadioState() {
	if m.denseRadio != nil {
		*m.denseRadio = radioTable{}
		return
	}
	m.state = make(map[ipaddr.Addr]*hostState)
}

// Respond implements simnet.Fabric.
func (m *Model) Respond(from ipaddr.Addr, at simnet.Time, pkt []byte) []simnet.Delivery {
	vc, ok := m.vantages[from]
	if !ok {
		panic(fmt.Sprintf("netmodel: probe from unregistered vantage %s", from))
	}
	p, err := m.dec.Decode(pkt)
	if err != nil {
		return nil // a malformed probe dies in the network
	}
	t := at.Seconds()
	// TTL expiry: a probe whose TTL is smaller than the path's hop count
	// dies at that router, which answers with ICMP time exceeded — the
	// mechanism traceroute exploits.
	if p.IP.TTL > 0 && int(p.IP.TTL) < m.pop.hostHops(vc, p.IP.Dst) {
		return m.timeExceeded(vc, from, p, t)
	}
	switch {
	case p.Echo != nil && p.Echo.Type == wire.ICMPTypeEchoRequest:
		m.Stats.EchoProbes++
		return m.respondEcho(vc, from, p, t)
	case p.UDP != nil:
		m.Stats.UDPProbes++
		return m.respondUDP(vc, from, p, t)
	case p.TCP != nil:
		m.Stats.TCPProbes++
		return m.respondTCP(vc, from, p, t)
	}
	return nil
}

// respondEcho handles an ICMP echo request.
func (m *Model) respondEcho(vc ipmeta.Continent, from ipaddr.Addr, p *wire.Packet, t float64) []simnet.Delivery {
	dst := p.IP.Dst
	bp := m.pop.BlockProfile(dst.Prefix())

	// Probes to subnet network/broadcast addresses can fan out (§3.3.1).
	if bp.IsSpecial(dst.LastOctet()) && m.pop.Contains(dst) {
		return m.respondBroadcast(vc, from, p, bp, t)
	}

	pr := m.pop.Profile(dst)
	if !m.responsiveAt(&pr, t) {
		return m.gatewayError(vc, from, p, &pr, t)
	}
	delay, ok := m.pathDelay(&pr, vc, t)
	if !ok {
		return nil
	}
	p.Echo.ReplyInto(&m.replyEcho)
	reply := wire.EncodeEchoTTL(dst, from, &m.replyEcho, m.pop.ReplyTTL(vc, dst))
	return m.withDuplicates(&pr, t, delay, reply)
}

// respondUDP handles a UDP probe: hosts answer with ICMP port unreachable
// (no servers listen on the prober's high ports), which still measures the
// full path and host wake-up, so "all protocols are treated the same" (§5.3).
func (m *Model) respondUDP(vc ipmeta.Continent, from ipaddr.Addr, p *wire.Packet, t float64) []simnet.Delivery {
	dst := p.IP.Dst
	pr := m.pop.Profile(dst)
	if !m.responsiveAt(&pr, t) {
		return m.gatewayError(vc, from, p, &pr, t)
	}
	delay, ok := m.pathDelay(&pr, vc, t)
	if !ok {
		return nil
	}
	// Quote the probe's IP header + first 8 payload bytes, per RFC 792.
	quote := m.quoteFor(p)
	reply := wire.EncodeICMPErrorTTL(dst, from, &wire.ICMPError{
		Type: wire.ICMPTypeDstUnreachable, Code: wire.ICMPCodePortUnreachable, Original: quote,
	}, m.pop.ReplyTTL(vc, dst))
	return m.deliver(simnet.Delivery{Delay: durOf(delay), Data: reply})
}

// respondTCP handles a TCP ACK probe: a perimeter firewall may answer with
// an immediate RST for the whole block; otherwise the host itself RSTs
// after the full path delay.
func (m *Model) respondTCP(vc ipmeta.Continent, from ipaddr.Addr, p *wire.Packet, t float64) []simnet.Delivery {
	dst := p.IP.Dst
	bp := m.pop.BlockProfile(dst.Prefix())
	if bp.FirewallTCPRST {
		pr := m.pop.Profile(dst) // for continent lookup; works even if unresponsive
		cont := pr.AS.Continent
		rng := xrand.Seeded(m.pop.cfg.Seed, uint64(dst), saltFwJitter, uint64(int64(t*1e6)))
		delay := propRTT[vc][cont]*(0.85+0.1*rng.Float64()) + 0.045 + rng.Exp(0.03)
		rst := p.TCP.RST()
		reply := wire.EncodeTCPTTL(dst, from, rst, m.pop.FirewallTTL(vc, dst.Prefix()))
		return m.deliver(simnet.Delivery{Delay: durOf(delay), Data: reply})
	}
	pr := m.pop.Profile(dst)
	if !m.responsiveAt(&pr, t) {
		return nil
	}
	delay, ok := m.pathDelay(&pr, vc, t)
	if !ok {
		return nil
	}
	reply := wire.EncodeTCPTTL(dst, from, p.TCP.RST(), m.pop.ReplyTTL(vc, dst))
	return m.deliver(simnet.Delivery{Delay: durOf(delay), Data: reply})
}

// respondBroadcast fans an echo request sent to a subnet broadcast (or
// network) address out to the subnet's devices; those configured to answer
// reply with their *own* source address (§3.3.1, Figure 2).
func (m *Model) respondBroadcast(vc ipmeta.Continent, from ipaddr.Addr, p *wire.Packet, bp BlockProfile, t float64) []simnet.Delivery {
	last := p.IP.Dst.LastOctet()
	isBcast := bp.IsBroadcast(last)
	if isBcast && !bp.BroadcastEnabled {
		return nil
	}
	if !isBcast && !bp.NetworkReplies {
		return nil
	}
	out := m.deliv[:0]
	base := bp.SubnetOf(last)
	seed := m.pop.cfg.Seed
	for i := 0; i < bp.SubnetSize(); i++ {
		a := p.IP.Dst.Prefix().Addr(base + byte(i))
		if a == p.IP.Dst {
			continue
		}
		pr := m.pop.Profile(a)
		if !pr.RespondsToBroadcast {
			continue
		}
		// Answering the network address is the rarer, old-stack behavior.
		if !isBcast && xrand.HashFloat(seed, uint64(a), saltBcastResp) > 0.6 {
			continue
		}
		// Most broadcast responders answer nearly every round; a rare few
		// answer only ~once in 50 rounds — the population behind the
		// paper's 0.13% filter false-negative rate (§3.3.1).
		brLoss := 0.02
		if xrand.HashFloat(seed, uint64(a), saltBcastResp, 7) < 0.01 {
			brLoss = 0.98
		}
		if xrand.HashFloat(seed, uint64(a), saltBcastResp, uint64(int64(t*1e6))) < brLoss {
			continue
		}
		// Broadcast responders are LAN devices; their latency is the plain
		// path plus their access link — deliberately *stable*, which is the
		// property the paper's EWMA filter keys on. Their access component
		// is drawn here because many of them are not directly responsive
		// and so carry no access profile.
		jitter := 0.8 + 0.7*xrand.HashFloat(seed, uint64(a), saltDistance)
		access := 0.01 + 0.05*xrand.HashFloat(seed, uint64(a), saltAccess)
		rng := xrand.Seeded(seed, uint64(a), saltSvcJitter, uint64(int64(t*1e6)))
		delay := propRTT[vc][pr.AS.Continent]*jitter + access + rng.Exp(0.006)
		p.Echo.ReplyInto(&m.replyEcho)
		reply := wire.EncodeEchoTTL(a, from, &m.replyEcho, m.pop.ReplyTTL(vc, a))
		out = append(out, simnet.Delivery{Delay: durOf(delay), Data: reply})
	}
	m.deliv = out
	if len(out) > 0 {
		m.Stats.BroadcastFanouts++
	}
	return out
}

// timeExceeded answers a TTL-expired probe from the router at that hop.
// The delay scales with how far along the path the probe died.
func (m *Model) timeExceeded(vc ipmeta.Continent, from ipaddr.Addr, p *wire.Packet, t float64) []simnet.Delivery {
	dst := p.IP.Dst
	hop := int(p.IP.TTL)
	hops := m.pop.hostHops(vc, dst)
	router := m.pop.RouterAddr(vc, dst, hop)
	spec, ok := m.pop.spec(dst.Prefix())
	cont := vc
	if ok && hop > hops/2 {
		cont = spec.AS.Continent
	}
	frac := float64(hop) / float64(hops)
	rng := xrand.Seeded(m.pop.cfg.Seed, uint64(dst), saltGwJitter, uint64(int64(t*1e6)), uint64(hop))
	// Routers rate-limit ICMP generation (RFC 1812); drop some requests.
	if rng.Float64() < 0.08 {
		return nil
	}
	delay := propRTT[vc][cont]*frac*(0.9+0.2*rng.Float64()) + 0.004 + rng.Exp(0.01)
	ttl := byte(255 - hop)
	reply := wire.EncodeICMPErrorTTL(router, from, &wire.ICMPError{
		Type: wire.ICMPTypeTimeExceeded, Code: 0, Original: m.quoteFor(p),
	}, ttl)
	return m.deliver(simnet.Delivery{Delay: durOf(delay), Data: reply})
}

// gatewayError emits a host-unreachable from the block gateway for a small
// share of unoccupied addresses. The survey records these and then ignores
// the probes (§3.1: "we ignore all probes associated with such responses").
func (m *Model) gatewayError(vc ipmeta.Continent, from ipaddr.Addr, p *wire.Packet, pr *Profile, t float64) []simnet.Delivery {
	if !pr.ICMPErrorResponder {
		return nil
	}
	gw := p.IP.Dst.Prefix().Addr(1)
	rng := xrand.Seeded(m.pop.cfg.Seed, uint64(p.IP.Dst), saltGwJitter, uint64(int64(t*1e6)))
	delay := propRTT[vc][pr.AS.Continent]*(0.9+0.2*rng.Float64()) + 0.01 + rng.Exp(0.01)
	reply := wire.EncodeICMPErrorTTL(gw, from, &wire.ICMPError{
		Type: wire.ICMPTypeDstUnreachable, Code: wire.ICMPCodeHostUnreachable, Original: m.quoteFor(p),
	}, m.pop.GatewayTTL(vc, p.IP.Dst.Prefix()))
	return m.deliver(simnet.Delivery{Delay: durOf(delay), Data: reply})
}

// pathDelay computes the full probe->response delay for a responsive host,
// or reports the probe lost. It is the composition of the model's latency
// sources: loss, buffered-outage episodes, cellular wake-up, queueing, and
// the base path.
func (m *Model) pathDelay(pr *Profile, vc ipmeta.Continent, t float64) (float64, bool) {
	seed, key := m.pop.cfg.Seed, uint64(pr.Addr)

	// Plain packet loss.
	if xrand.HashFloat(seed, key, saltProbeLoss, uint64(int64(t*1e6))) < pr.LossRate {
		m.Stats.Lost++
		return 0, false
	}

	svc := propRTT[vc][pr.AS.Continent]*pr.DistanceJitter + pr.AccessRTT + pr.SatBase
	rng := xrand.Seeded(seed, key, saltSvcJitter, uint64(int64(t*1e6)))
	svc += rng.Exp(0.008)

	// Buffered-outage episodes override everything else: the device is
	// unreachable and its probes are buffered, delayed enormously, or lost.
	if ev, in := m.pop.sleepyAt(pr, t); in {
		m.Stats.Sleepy++
		if ev.lost {
			return 0, false
		}
		return svc + ev.delay, true
	}

	var hold float64
	if pr.Class == ClassCellular {
		hold = m.wakeHold(pr, t)
		if hold > 0 {
			m.Stats.Woken++
		}
	}

	queue := m.pop.congestionDelay(pr, m.congLevel(pr), t)
	return svc + queue + hold, true
}

// responsiveAt reports whether the host answers probes at time t,
// accounting for late joiners.
func (m *Model) responsiveAt(pr *Profile, t float64) bool {
	return pr.Responsive && t >= pr.JoinTime
}

// congLevel returns the AS congestion level for the profile's AS.
func (m *Model) congLevel(pr *Profile) float64 {
	spec, ok := m.pop.spec(pr.Addr.Prefix())
	if !ok {
		return 0
	}
	return spec.CongestionLevel
}

// wakeHold advances the cellular radio state machine for a probe arriving
// at t and returns how long the probe is held before the device can answer.
// Probes arriving while the radio negotiates are all released together when
// it is ready — which is why the paper sees RTT1-RTT2 differences of almost
// exactly the probe spacing (Figure 12).
func (m *Model) wakeHold(pr *Profile, t float64) float64 {
	var st *hostState
	if m.denseRadio != nil {
		st = m.denseRadio.get(uint32(pr.Addr), t)
	} else {
		st = m.state[pr.Addr]
		if st == nil {
			st = &hostState{}
			m.state[pr.Addr] = st
		}
	}
	var hold float64
	switch {
	case st.used && t < st.wakeUntil:
		hold = st.wakeUntil - t
	case !st.used || t-st.lastActive > pr.IdleTimeout:
		// The device's own traffic sometimes has the radio up already; for
		// those probes the first ping pays no penalty. This is the minority of
		// high-latency addresses the paper finds with RTT1 at or below the
		// median of the rest (§6.3).
		if xrand.HashFloat(m.pop.cfg.Seed, uint64(pr.Addr), saltAwake, uint64(int64(t*1e6))) < 0.25 {
			break
		}
		w := drawWake(m.pop.cfg.Seed, uint64(pr.Addr), t)
		st.wakeUntil = t + w
		hold = w
	}
	st.used = true
	if t+hold > st.lastActive {
		st.lastActive = t + hold
	}
	return hold
}

// withDuplicates wraps a reply according to the host's duplication profile:
// most hosts send one copy; duplicating links send 2-4 together; DoS-style
// responders send huge counts spread over minutes (§3.3.2, Figure 5).
func (m *Model) withDuplicates(pr *Profile, t, delay float64, reply []byte) []simnet.Delivery {
	switch {
	case pr.DupCount < 2:
		return m.deliver(simnet.Delivery{Delay: durOf(delay), Data: reply})
	case pr.DupCount <= 4:
		return m.deliver(simnet.Delivery{Delay: durOf(delay), Data: reply, Count: pr.DupCount})
	}
	// Flood: first copy at the natural delay, the rest in chunks over the
	// following minutes (the paper saw ~11M responses inside 11 minutes).
	rng := xrand.Seeded(m.pop.cfg.Seed, uint64(pr.Addr), saltDupChunk, uint64(int64(t*1e6)))
	const chunks = 8
	out := append(m.deliv[:0], simnet.Delivery{Delay: durOf(delay), Data: reply})
	remaining := pr.DupCount - 1
	spread := 60 + 540*rng.Float64()
	for i := 0; i < chunks && remaining > 0; i++ {
		n := remaining / (chunks - i)
		if i == chunks-1 {
			n = remaining
		}
		if n == 0 {
			continue
		}
		remaining -= n
		at := delay + spread*float64(i+1)/chunks*(0.8+0.4*rng.Float64())
		out = append(out, simnet.Delivery{Delay: durOf(at), Data: reply, Count: n})
	}
	m.deliv = out
	return out
}

// deliver returns a single-delivery slice backed by the model's scratch;
// Send consumes it before the next Respond.
func (m *Model) deliver(d simnet.Delivery) []simnet.Delivery {
	m.deliv = append(m.deliv[:0], d)
	return m.deliv
}

// quoteFor builds the ICMP error quote into the model's scratch buffer: the
// probe's IPv4 header plus its first 8 payload bytes, per RFC 792. The bytes
// are copied into the reply packet before the next Respond overwrites them.
func (m *Model) quoteFor(p *wire.Packet) []byte {
	q := p.IP.AppendTo(m.quote[:0])
	n := len(p.L4)
	if n > 8 {
		n = 8
	}
	q = append(q, p.L4[:n]...)
	m.quote = q
	return q
}

// durOf converts seconds to a Duration, clamping negatives to zero.
func durOf(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	return time.Duration(s * float64(time.Second))
}
