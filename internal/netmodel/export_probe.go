package netmodel

// SleepyEvent is the exported view of a probe's fate inside a
// buffered-outage episode, for diagnostics and tests.
type SleepyEvent struct {
	Mode  SleepyMode
	Lost  bool
	Delay float64 // seconds
}

// SleepyAt exposes the sleepy-episode decision for a probe at time t
// (seconds), for diagnostics and tests.
func (p *Population) SleepyAt(pr *Profile, t float64) (SleepyEvent, bool) {
	ev, ok := p.sleepyAt(pr, t)
	if !ok {
		return SleepyEvent{}, false
	}
	return SleepyEvent{Mode: ev.mode, Lost: ev.lost, Delay: ev.delay}, true
}

// CongestionDelayAt exposes the queueing-delay draw for a probe at time t
// (seconds), for diagnostics and tests.
func (p *Population) CongestionDelayAt(pr *Profile, level float64, t float64) float64 {
	return p.congestionDelay(pr, level, t)
}
