package netmodel

import (
	"fmt"
	"math"
	"sort"

	"timeouts/internal/ipaddr"
	"timeouts/internal/ipmeta"
	"timeouts/internal/xrand"
)

// Config parameterizes a synthetic population.
type Config struct {
	// Seed drives all population randomness. Populations with equal
	// configs are identical.
	Seed uint64

	// Blocks is the number of /24 address blocks to allocate across the AS
	// catalog. Zero selects DefaultBlocks.
	Blocks int

	// Catalog is the AS catalog to allocate from; nil selects
	// DefaultCatalog().
	Catalog []ASSpec

	// CellularScale multiplies every AS's CellularFrac, modelling the
	// growth of cellular deployment across survey years (Figure 9 shows
	// high latency rising from 2006 to 2015). Zero means 1.
	CellularScale float64

	// SleepyScale multiplies the rate of >100 s buffered-outage episodes.
	// Zero means 1.
	SleepyScale float64
}

// DefaultBlocks is the default population size: 1024 /24 blocks = 262,144
// addresses, a ~1/57000 scale model of the IPv4 space that keeps every
// behavioral class populated.
const DefaultBlocks = 1024

// baseBlock is the /24 of 1.0.0.0; allocation proceeds upward from here.
const baseBlock = ipaddr.Prefix24(0x010000)

// assignment gives one AS its contiguous run of blocks.
type assignment struct {
	start  ipaddr.Prefix24
	blocks int
	spec   ASSpec
}

// Population is an immutable synthetic address population.
type Population struct {
	cfg      Config
	assigns  []assignment
	db       *ipmeta.DB
	catalog  []ASSpec
	cellMul  float64
	sleepMul float64
}

// New builds a population from the config.
func New(cfg Config) *Population {
	if cfg.Blocks == 0 {
		cfg.Blocks = DefaultBlocks
	}
	if cfg.Catalog == nil {
		cfg.Catalog = DefaultCatalog()
	}
	if cfg.Blocks < len(cfg.Catalog) {
		panic(fmt.Sprintf("netmodel: %d blocks cannot cover %d ASes", cfg.Blocks, len(cfg.Catalog)))
	}
	p := &Population{cfg: cfg, catalog: cfg.Catalog, cellMul: cfg.CellularScale, sleepMul: cfg.SleepyScale}
	if p.cellMul == 0 {
		p.cellMul = 1
	}
	if p.sleepMul == 0 {
		p.sleepMul = 1
	}
	p.allocate()
	return p
}

// allocate partitions cfg.Blocks across the catalog by weight using the
// largest-remainder method, guaranteeing at least one block per AS.
func (p *Population) allocate() {
	specs := p.catalog
	total := 0.0
	for _, s := range specs {
		total += s.Weight
	}
	type share struct {
		idx   int
		whole int
		frac  float64
	}
	shares := make([]share, len(specs))
	assigned := 0
	// Reserve one block per AS up front, distribute the rest by weight.
	spare := p.cfg.Blocks - len(specs)
	for i, s := range specs {
		exact := s.Weight / total * float64(spare)
		w := int(math.Floor(exact))
		shares[i] = share{idx: i, whole: w, frac: exact - float64(w)}
		assigned += w
	}
	rem := spare - assigned
	sort.Slice(shares, func(i, j int) bool { return shares[i].frac > shares[j].frac })
	for i := 0; i < rem; i++ {
		shares[i%len(shares)].whole++
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].idx < shares[j].idx })

	var b ipmeta.Builder
	next := baseBlock
	p.assigns = make([]assignment, len(specs))
	for i, s := range specs {
		n := shares[i].whole + 1
		p.assigns[i] = assignment{start: next, blocks: n, spec: s}
		b.Add(ipmeta.Range{Start: next, Blocks: n, AS: s.AS})
		next += ipaddr.Prefix24(n)
	}
	db, err := b.Build()
	if err != nil {
		panic("netmodel: internal allocation overlap: " + err.Error())
	}
	p.db = db
}

// Seed returns the population seed.
func (p *Population) Seed() uint64 { return p.cfg.Seed }

// DB returns the address-metadata database for the population, playing the
// role of the MaxMind lookups in §6.2.
func (p *Population) DB() *ipmeta.DB { return p.db }

// NumBlocks returns the number of allocated /24 blocks.
func (p *Population) NumBlocks() int { return p.cfg.Blocks }

// NumAddrs returns the number of allocated addresses.
func (p *Population) NumAddrs() int { return p.cfg.Blocks * 256 }

// Blocks returns all allocated /24 prefixes in address order.
func (p *Population) Blocks() []ipaddr.Prefix24 {
	out := make([]ipaddr.Prefix24, 0, p.cfg.Blocks)
	for _, a := range p.assigns {
		for i := 0; i < a.blocks; i++ {
			out = append(out, a.start+ipaddr.Prefix24(i))
		}
	}
	return out
}

// FirstAddr returns the lowest allocated address.
func (p *Population) FirstAddr() ipaddr.Addr { return baseBlock.First() }

// Contains reports whether the address is inside the allocated space.
func (p *Population) Contains(a ipaddr.Addr) bool {
	_, ok := p.spec(a.Prefix())
	return ok
}

// spec finds the ASSpec owning a prefix.
func (p *Population) spec(pre ipaddr.Prefix24) (*ASSpec, bool) {
	i := sort.Search(len(p.assigns), func(i int) bool {
		return p.assigns[i].start+ipaddr.Prefix24(p.assigns[i].blocks) > pre
	})
	if i == len(p.assigns) || pre < p.assigns[i].start {
		return nil, false
	}
	return &p.assigns[i].spec, true
}

// AddrAt returns the i-th allocated address (0 <= i < NumAddrs), counting in
// address order. Used by scanners to enumerate the population.
func (p *Population) AddrAt(i int) ipaddr.Addr {
	return ipaddr.Addr(uint32(baseBlock)<<8 + uint32(i))
}

// IndexOf inverts AddrAt.
func (p *Population) IndexOf(a ipaddr.Addr) int {
	return int(uint32(a) - uint32(baseBlock)<<8)
}

// hash salts for the independent per-address draws.
const (
	saltResponsive = iota + 1
	saltClass
	saltSeverity
	saltAccess
	saltDistance
	saltLoss
	saltDup
	saltDupCount
	saltBroadcastDev
	saltIdle
	saltErrResp
	saltBlockSplit
	saltBlockBcast
	saltBlockFirewall
	saltCong
	saltSleepy
	saltWake
	saltSvc
	saltDupSpread
	saltScanJitter
	saltJoin
)

// Class is the behavioral class of a host.
type Class uint8

// Host classes, roughly ordered by expected latency tail.
const (
	// ClassServer hosts sit in datacenters: low base latency, negligible
	// queueing.
	ClassServer Class = iota
	// ClassQuiet hosts are well-provisioned wireline subscribers.
	ClassQuiet
	// ClassDSL hosts are ordinary wireline subscribers with moderate
	// queueing during busy periods.
	ClassDSL
	// ClassCongested hosts sit behind chronically oversubscribed or
	// deeply buffered links (the bufferbloat population).
	ClassCongested
	// ClassCellular hosts are mobile devices: radio wake-up before the
	// first packet, deep queues, and occasional buffered outages.
	ClassCellular
	// ClassSatellite hosts use geosynchronous satellite service.
	ClassSatellite
)

var classNames = [...]string{"server", "quiet", "dsl", "congested", "cellular", "satellite"}

// String returns a short label.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Profile is the immutable behavioral profile of one address, derived
// deterministically from (seed, address).
type Profile struct {
	Addr       ipaddr.Addr
	AS         ipmeta.AS
	Responsive bool
	Class      Class

	// Severity in [0,1] scales the host's pathology: episode rates, queue
	// depth, wake-up tail. The turtle population is the high-severity end
	// of the cellular/congested classes.
	Severity float64

	// AccessRTT is the last-mile round-trip component.
	AccessRTT float64 // seconds

	// DistanceJitter scales the propagation component (path indirectness).
	DistanceJitter float64

	// LossRate is the base probe-loss probability.
	LossRate float64

	// DupCount is 0 for normal hosts; 2..4 for duplicating links; large
	// (up to millions) for misconfigured/DoS responders (§3.3.2).
	DupCount int

	// RespondsToBroadcast reports whether the device answers echo requests
	// sent to its subnet's broadcast address (§3.3.1).
	RespondsToBroadcast bool

	// ICMPErrorResponder reports whether probes to this (unoccupied)
	// address draw a host-unreachable from the block gateway.
	ICMPErrorResponder bool

	// IdleTimeout is how long the cellular radio stays awake after
	// traffic; probes that arrive later pay the wake-up delay.
	IdleTimeout float64 // seconds

	// JoinTime, when nonzero, is the simulation time (seconds) at which
	// the device first became responsive (a "late joiner").
	JoinTime float64

	// SatBase is the satellite base RTT (seconds), zero for non-satellite.
	SatBase float64
	// SatQueueCap caps satellite queueing (seconds).
	SatQueueCap float64
}

// Profile derives the behavior profile for an address. Addresses outside
// the allocated space return a zero profile with Responsive=false.
func (p *Population) Profile(a ipaddr.Addr) Profile {
	spec, ok := p.spec(a.Prefix())
	if !ok {
		return Profile{Addr: a}
	}
	seed := p.cfg.Seed
	key := uint64(a)
	pr := Profile{Addr: a, AS: spec.AS}

	// Subnet network/broadcast addresses never host devices.
	bp := p.BlockProfile(a.Prefix())
	if bp.IsSpecial(a.LastOctet()) {
		// A gateway may still emit errors for them, handled by the model.
		return pr
	}

	// Whether a device at this address answers subnet-broadcast pings
	// (§3.3.1). Deliberately independent of direct responsiveness: the
	// paper found 939,559 broadcast responders in the Zmap scan of which
	// only 7,212 also answered direct survey probes — most broadcast
	// responders are devices (printers, routers with ACLs) that answer the
	// broadcast but not their own address, and those are exactly the ones
	// whose replies get falsely matched to timed-out direct probes.
	pr.RespondsToBroadcast = xrand.HashFloat(seed, key, saltBroadcastDev) < 0.08

	// Responsiveness. A band of addresses just above the base threshold
	// are "late joiners": devices deployed during the measurement period,
	// responsive only after JoinTime. They reproduce the gradual growth of
	// Zmap responder counts across the paper's scan series (Table 3:
	// 339M in April to ~370M in July).
	u0 := xrand.HashFloat(seed, key, saltResponsive)
	switch {
	case u0 < spec.Responsiveness:
		pr.Responsive = true
	case u0 < spec.Responsiveness*1.15:
		pr.Responsive = true
		pr.JoinTime = 60 * 86400 * xrand.HashFloat(seed, key, saltJoin)
	default:
		// A small share of unoccupied addresses draw ICMP errors from the
		// gateway; the survey records and then ignores them (§3.1).
		pr.ICMPErrorResponder = xrand.HashFloat(seed, key, saltErrResp) < 0.02
		return pr
	}

	// Class assignment within the AS.
	u := xrand.HashFloat(seed, key, saltClass)
	cellFrac := spec.CellularFrac * p.cellMul
	if cellFrac > 1 {
		cellFrac = 1
	}
	switch {
	case spec.AS.Type == ipmeta.Satellite:
		pr.Class = ClassSatellite
	case u < cellFrac:
		pr.Class = ClassCellular
	case spec.AS.Type == ipmeta.Datacenter:
		pr.Class = ClassServer
	default:
		// Split the wireline remainder among quiet/DSL/congested according
		// to the AS congestion level.
		v := (u - cellFrac) / (1 - cellFrac + 1e-12)
		congested := 0.02 + 0.10*spec.CongestionLevel
		dsl := 0.45 + 0.2*spec.CongestionLevel
		switch {
		case v < congested:
			pr.Class = ClassCongested
		case v < congested+dsl:
			pr.Class = ClassDSL
		default:
			pr.Class = ClassQuiet
		}
	}

	pr.Severity = xrand.HashFloat(seed, key, saltSeverity)
	pr.DistanceJitter = 0.8 + 0.7*xrand.HashFloat(seed, key, saltDistance)
	if pr.Class == ClassServer {
		// Datacenters sit near exchange points: short, direct paths. This
		// is the population behind Table 2's top row (0.01-0.18 s).
		pr.DistanceJitter = 0.25 + 0.35*xrand.HashFloat(seed, key, saltDistance)
	}

	rng := xrand.New(seed, key, saltAccess)
	switch pr.Class {
	case ClassServer:
		pr.AccessRTT = 0.001 + 0.004*rng.Float64()
		pr.LossRate = 0.001
	case ClassQuiet:
		pr.AccessRTT = 0.008 + 0.030*rng.Float64()
		pr.LossRate = 0.003 + 0.01*xrand.HashFloat(seed, key, saltLoss)
	case ClassDSL:
		pr.AccessRTT = 0.015 + 0.050*rng.Float64()
		pr.LossRate = 0.005 + 0.02*xrand.HashFloat(seed, key, saltLoss)
	case ClassCongested:
		pr.AccessRTT = 0.030 + 0.080*rng.Float64()
		pr.LossRate = 0.02 + 0.06*xrand.HashFloat(seed, key, saltLoss)
	case ClassCellular:
		pr.AccessRTT = 0.040 + 0.110*rng.Float64()
		pr.LossRate = 0.01 + 0.05*xrand.HashFloat(seed, key, saltLoss)
		pr.IdleTimeout = 10 + 60*xrand.HashFloat(seed, key, saltIdle)
	case ClassSatellite:
		pr.SatBase = (spec.SatBaseMS + spec.SatSpreadMS*rng.Float64()) / 1000
		pr.SatQueueCap = spec.SatQueueCapMS / 1000
		pr.AccessRTT = 0.010 + 0.020*rng.Float64()
		pr.LossRate = 0.01 + 0.02*xrand.HashFloat(seed, key, saltLoss)
	}

	// Duplicate responders (§3.3.2): ~1% of hosts duplicate (2-4 copies);
	// a tiny fraction of those are misconfigured or retaliating and send
	// hundreds to millions of responses.
	if xrand.HashFloat(seed, key, saltDup) < 0.022 {
		r2 := xrand.New(seed, key, saltDupCount)
		if r2.Float64() < 0.010 {
			// Heavy tail: hundreds up to millions of responses per request
			// (misconfiguration or retaliatory DoS, §3.3.2).
			n := int(r2.Pareto(700, 0.55))
			if n > 2_000_000 {
				n = 2_000_000
			}
			pr.DupCount = n
		} else if r2.Float64() < 0.30 {
			pr.DupCount = 5 + r2.Intn(90)
		} else {
			pr.DupCount = 2 + r2.Intn(3)
		}
	}

	return pr
}

// BlockProfile captures per-/24 behavior: how the block is subnetted (which
// determines its broadcast addresses), whether those subnets answer
// broadcast pings, and whether a stateful firewall RSTs unsolicited TCP.
type BlockProfile struct {
	Prefix ipaddr.Prefix24
	// HostBits is the host-part width of the subnets the /24 is split
	// into: 8 means the /24 is one subnet, 7 two /25s, and so on.
	HostBits int
	// BroadcastEnabled reports whether devices in the block are configured
	// to answer subnet-broadcast echo requests at all.
	BroadcastEnabled bool
	// NetworkReplies reports whether devices also answer the all-zeros
	// (network) address, an older-stack behavior.
	NetworkReplies bool
	// FirewallTCPRST: a perimeter firewall answers unsolicited TCP ACKs to
	// any address in the block with an immediate RST (Figure 10's 200 ms
	// TCP mode).
	FirewallTCPRST bool
}

// BlockProfile derives the block-level profile for a /24.
func (p *Population) BlockProfile(pre ipaddr.Prefix24) BlockProfile {
	seed := p.cfg.Seed
	key := uint64(pre)
	bp := BlockProfile{Prefix: pre}
	// Subnetting distribution: most /24s are one subnet; the rest are
	// split on power-of-two boundaries (Figure 2's spikes at 255/0,
	// 127/128, 63/64/191/192, ...).
	u := xrand.HashFloat(seed, key, saltBlockSplit)
	switch {
	case u < 0.55:
		bp.HostBits = 8
	case u < 0.77:
		bp.HostBits = 7
	case u < 0.89:
		bp.HostBits = 6
	case u < 0.955:
		bp.HostBits = 5
	case u < 0.985:
		bp.HostBits = 4
	case u < 0.996:
		bp.HostBits = 3
	default:
		bp.HostBits = 2
	}
	v := xrand.HashFloat(seed, key, saltBlockBcast)
	bp.BroadcastEnabled = v < 0.018
	bp.NetworkReplies = v < 0.007
	spec, ok := p.spec(pre)
	if ok && spec.AS.Type == ipmeta.Broadband {
		bp.FirewallTCPRST = xrand.HashFloat(seed, key, saltBlockFirewall) < 0.10
	}
	return bp
}

// subnetMask returns the host-part mask for the block's subnets.
func (bp BlockProfile) subnetMask() byte { return byte(1<<bp.HostBits - 1) }

// IsBroadcast reports whether the last octet is the all-ones host address of
// its subnet within this block.
func (bp BlockProfile) IsBroadcast(lastOctet byte) bool {
	m := bp.subnetMask()
	return lastOctet&m == m
}

// IsNetwork reports whether the last octet is the all-zeros host address of
// its subnet within this block.
func (bp BlockProfile) IsNetwork(lastOctet byte) bool {
	return lastOctet&bp.subnetMask() == 0
}

// IsSpecial reports whether the last octet is a network or broadcast
// address of its subnet.
func (bp BlockProfile) IsSpecial(lastOctet byte) bool {
	return bp.IsBroadcast(lastOctet) || bp.IsNetwork(lastOctet)
}

// SubnetOf returns the first last-octet of the subnet containing the octet.
func (bp BlockProfile) SubnetOf(lastOctet byte) byte {
	return lastOctet &^ bp.subnetMask()
}

// SubnetSize returns the number of addresses per subnet.
func (bp BlockProfile) SubnetSize() int { return 1 << bp.HostBits }
