package netmodel

import (
	"math"

	"timeouts/internal/xrand"
)

// The model's time-varying pathologies are "episodes": intervals during
// which a host's link is congested, or its connectivity is interrupted and
// its inbound packets are buffered or lost. Episodes are derived lazily and
// statelessly: time is divided into fixed windows, and a hash of (seed,
// address, salt, window-index) decides whether a window contains an episode
// and with what parameters. Any probe can therefore be answered in O(1)
// without simulating the host between probes, and — crucially for the
// paper's §4.2 observation that a retried ping is *not* an independent
// latency sample — probes close together in time land in the same episode
// and see correlated delay.

// congestion episode windows are two hours long.
const congWindow = 7200

// sleepy (buffered-outage) windows are two hours long as well.
const sleepyWindow = 7200

// episode describes one active episode interval.
type episode struct {
	start, end float64
	rng        *xrand.Rand // parameter stream, deterministic per episode
}

// findEpisode reports whether an episode of the given kind covers time t
// for the host key. prob is the per-window probability of an episode;
// durMin/durMax bound its duration.
func findEpisode(seed, key, salt uint64, t, window, prob, durMin, durMax float64) (episode, bool) {
	if prob <= 0 {
		return episode{}, false
	}
	// A long episode may spill past its window edge; check the previous
	// window too so probes just after a boundary still see it.
	for _, idx := range [2]int64{int64(t / window), int64(t/window) - 1} {
		if idx < 0 {
			continue
		}
		if xrand.HashFloat(seed, key, salt, uint64(idx)) >= prob {
			continue
		}
		rng := xrand.New(seed, key, salt, uint64(idx), 0xE9150DE)
		dur := durMin + (durMax-durMin)*rng.Float64()
		start := float64(idx)*window + rng.Float64()*(window-durMin)
		if t >= start && t < start+dur {
			return episode{start: start, end: start + dur, rng: rng}, true
		}
	}
	return episode{}, false
}

// envelope shapes congestion intensity across an episode: ramps up, peaks
// mid-episode, drains. Probes a few seconds apart see nearly the same
// envelope value — this is what correlates retried probes.
func (e episode) envelope(t float64) float64 {
	span := e.end - e.start
	if span <= 0 {
		return 0
	}
	x := (t - e.start) / span
	return math.Sin(math.Pi * x)
}

// congestion parameters per class: per-window episode probability, and the
// lognormal intensity scale (median seconds, sigma) with a hard cap.
type congParams struct {
	prob           float64
	medianS, sigma float64
	capS           float64
}

func (p *Population) congParamsFor(pr *Profile, level float64) congParams {
	switch pr.Class {
	case ClassServer:
		return congParams{prob: 0.01, medianS: 0.05, sigma: 0.6, capS: 0.4}
	case ClassQuiet:
		return congParams{prob: 0.02 + 0.05*level, medianS: 0.15, sigma: 0.8, capS: 1.5}
	case ClassDSL:
		return congParams{prob: 0.10 + 0.25*level + 0.15*pr.Severity, medianS: 0.35, sigma: 1.0, capS: 4}
	case ClassCongested:
		return congParams{prob: 0.45 + 0.4*pr.Severity, medianS: 1.8, sigma: 1.2, capS: 60}
	case ClassCellular:
		return congParams{prob: 0.35 + 0.35*pr.Severity, medianS: 1.6, sigma: 1.2, capS: 120}
	case ClassSatellite:
		return congParams{prob: 0.25, medianS: 0.30, sigma: 0.7, capS: pr.SatQueueCap}
	}
	return congParams{}
}

// congestionDelay returns the queueing delay a probe at time t experiences
// from busy-period congestion: a small always-on diurnal component plus
// episode bursts.
func (p *Population) congestionDelay(pr *Profile, level float64, t float64) float64 {
	seed, key := p.cfg.Seed, uint64(pr.Addr)

	// Always-on queueing, modulated diurnally (peak at local evening; the
	// phase is approximated from the host continent's longitude offset).
	var qmean float64
	switch pr.Class {
	case ClassServer:
		qmean = 0.0008
	case ClassQuiet:
		qmean = 0.012
	case ClassDSL:
		qmean = 0.05
	case ClassCongested:
		qmean = 0.22
	case ClassCellular:
		qmean = 0.13
	case ClassSatellite:
		qmean = 0.06
	}
	diurnal := 0.55 + 0.9*humpOfDay(t, continentPhase[pr.AS.Continent])
	rng := xrand.New(seed, key, saltSvc, uint64(int64(t*1e6)))
	delay := rng.Exp(qmean * diurnal * (0.5 + pr.Severity))

	cp := p.congParamsFor(pr, level)
	if ep, ok := findEpisode(seed, key, saltCong, t, congWindow, cp.prob, 60, 1800); ok {
		intensity := cp.medianS * math.Exp(cp.sigma*ep.rng.Norm())
		d := intensity * (0.25 + 0.75*ep.envelope(t)) * (0.6 + 0.8*rng.Float64())
		if d > cp.capS {
			d = cp.capS
		}
		delay += d
	}
	if pr.Class == ClassSatellite && delay > pr.SatQueueCap {
		delay = pr.SatQueueCap
	}
	return delay
}

// humpOfDay returns a 0..1 busy-hour factor for time-of-day, shifted by
// phase hours.
func humpOfDay(t, phaseHours float64) float64 {
	const day = 86400
	tod := math.Mod(t+phaseHours*3600, day) / day // 0..1
	s := math.Sin(math.Pi * tod)
	return s * s
}

// continentPhase approximates each continent's longitude as an hour offset
// so busy hours differ by region.
var continentPhase = [...]float64{
	// SA, Asia, Europe, Africa, NA, Oceania
	-4, 8, 1, 2, -7, 10,
}

// SleepyMode classifies a buffered-outage episode, mirroring the latency
// patterns of Table 7.
type SleepyMode uint8

// Sleepy episode modes.
const (
	// SleepyBuffered: the link drops for a while and the network buffers
	// inbound probes, flushing them all when connectivity returns — the
	// paper's "decay" patterns, where successive responses arrive together
	// and measured RTTs fall by exactly the probe spacing.
	SleepyBuffered SleepyMode = iota
	// SleepySustained: minutes of very high latency with loss — the
	// paper's "sustained high latency and loss".
	SleepySustained
	// SleepyBlackout: probes are lost outright, except an occasional one
	// that straggles through enormously late — "high latency between loss".
	SleepyBlackout
)

// sleepyEvent describes the fate of one probe inside a sleepy episode.
type sleepyEvent struct {
	mode    SleepyMode
	lost    bool
	delay   float64 // extra delay before the response leaves the host side
	episode episode
}

// sleepyProb returns the per-window probability of a buffered-outage
// episode for the profile.
func (p *Population) sleepyProb(pr *Profile) float64 {
	var base float64
	switch pr.Class {
	case ClassCellular:
		// Severity-skewed: the worst cellular hosts spend percent-level
		// time unreachable-but-buffered; this is the population behind the
		// paper's 99th-percentile-row timeouts of 76–145 s.
		s := pr.Severity
		base = 0.15 + 1.7*s*s*s
	case ClassCongested:
		base = 0.02 + 0.08*pr.Severity*pr.Severity
	default:
		return 0
	}
	return base * p.sleepMul
}

// findSleepyEpisode locates a buffered-outage episode covering t, drawing
// the mode first so each mode can have its own duration range: buffered
// flushes last 40-520 s, sustained congestion runs for minutes (the paper's
// sustained events hold most of the >100 s pings), blackouts are shorter.
func findSleepyEpisode(seed, key uint64, t, prob float64) (episode, SleepyMode, bool) {
	for _, idx := range [2]int64{int64(t / sleepyWindow), int64(t/sleepyWindow) - 1} {
		if idx < 0 {
			continue
		}
		if xrand.HashFloat(seed, key, saltSleepy, uint64(idx)) >= prob {
			continue
		}
		rng := xrand.New(seed, key, saltSleepy, uint64(idx), 0xE9150DE)
		m := rng.Float64()
		var mode SleepyMode
		var durMin, durMax float64
		switch {
		case m < 0.72:
			// Short connectivity gaps with buffered flushes are by far the
			// most common event class (Table 7: 94 of 127 events).
			mode, durMin, durMax = SleepyBuffered, 80, 280
		case m < 0.82:
			// Sustained oversubscription episodes are rare but long, so
			// they hold the majority of >100 s pings (2994 of 5149).
			mode, durMin, durMax = SleepySustained, 540, 900
		default:
			mode, durMin, durMax = SleepyBlackout, 60, 300
		}
		dur := durMin + (durMax-durMin)*rng.Float64()
		start := float64(idx)*sleepyWindow + rng.Float64()*(sleepyWindow-durMin)
		if t >= start && t < start+dur {
			return episode{start: start, end: start + dur, rng: rng}, mode, true
		}
	}
	return episode{}, 0, false
}

// sleepyAt reports how a probe at time t is treated if a sleepy episode
// covers t.
func (p *Population) sleepyAt(pr *Profile, t float64) (sleepyEvent, bool) {
	prob := p.sleepyProb(pr)
	if prob <= 0 {
		return sleepyEvent{}, false
	}
	seed, key := p.cfg.Seed, uint64(pr.Addr)
	ep, mode, ok := findSleepyEpisode(seed, key, t, prob)
	if !ok {
		return sleepyEvent{}, false
	}
	ev := sleepyEvent{episode: ep, mode: mode}
	perProbe := xrand.New(seed, key, saltSleepy, uint64(int64(t*1e6)), 0x50B)
	switch mode {
	case SleepyBuffered:
		// Some episodes lose a leading fraction of probes before the
		// buffer engages ("loss, then decay"); others buffer from the
		// start ("low latency, then decay").
		lead := 0.0
		if ep.rng.Float64() < 0.85 {
			lead = 0.05 + 0.45*ep.rng.Float64()
		}
		bufStart := ep.start + lead*(ep.end-ep.start)
		if t < bufStart {
			ev.lost = true
		} else {
			ev.delay = ep.end - t + 0.05*perProbe.Float64()
		}
	case SleepySustained:
		if perProbe.Float64() < 0.38 {
			ev.lost = true
		} else {
			d := 25 + perProbe.Pareto(25, 0.8)
			if d > 380 {
				d = 380
			}
			ev.delay = d
		}
	case SleepyBlackout:
		if perProbe.Float64() < 0.95 {
			ev.lost = true
		} else {
			ev.delay = (ep.end - t) * (0.7 + 0.3*perProbe.Float64())
			if ev.delay > 110 && ev.delay < 130 {
				ev.delay += 30 // keep the stragglers clearly above 100 s
			}
		}
	}
	return ev, true
}

// wake draws the radio wake-up delay for a cellular host. Across the
// population it is lognormal with median ~1.4 s, 90% below 4 s, ~2% above
// 8.5 s (Figure 13), clamped to [0.3 s, 55 s]. Part of the spread is a
// *per-host* characteristic (device model, radio technology), which is what
// keeps the same addresses slow in scan after scan (Figure 7's stability);
// the rest is per-wake jitter.
func drawWake(seed, key uint64, t float64) float64 {
	hostMu := 0.20 + 0.9*(xrand.HashFloat(seed, key, saltWake)-0.5)
	rng := xrand.New(seed, key, saltWake, uint64(int64(t*1e6)))
	w := math.Exp(hostMu + 0.75*rng.Norm())
	if w < 0.3 {
		w = 0.3
	}
	if w > 55 {
		w = 55
	}
	return w
}
