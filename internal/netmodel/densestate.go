package netmodel

import "timeouts/internal/ipaddr"

// Dense radio state: the map of *hostState in Model caps populations at
// simulation scale — one heap allocation and one map entry per cellular
// address ever probed. At internet scale almost all of that state is dead
// weight, because the radio state machine only distinguishes an address from
// a fresh one while it is *recent*:
//
//   - wakeHold's first branch needs wakeUntil only while t < wakeUntil, and
//     wakeUntil ≤ lastActive always holds after every update (lastActive is
//     raised to t+hold ≥ wakeUntil).
//   - Its second branch treats any entry with t-lastActive > IdleTimeout
//     exactly like a missing entry (the !used and the idle-expired arms run
//     the same code), and IdleTimeout = 10 + 60·u with u ∈ [0,1) is
//     strictly below 70 for every profile.
//
// So once sim time has moved more than radioHorizon past an entry's
// lastActive, dropping the entry cannot change any future decision: the
// model is byte-for-byte equivalent with or without it. Each shard's
// scheduler clock is monotone, which makes a bounded open-addressing table
// with horizon pruning a drop-in replacement for the unbounded map — the
// table holds only the working set of recently active radios, independent of
// population size.
const radioHorizon = 70.0

// radioEntry is one open-addressed slot: the address key plus the same
// hostState the map path stores behind a pointer, inline.
type radioEntry struct {
	addr uint32
	occ  bool
	st   hostState
}

// radioTable is the dense-mode replacement for Model.state: an
// open-addressed, linearly probed hash table over uint32 addresses whose
// growth step first evicts entries older than radioHorizon (see above for
// why eviction is invisible to the model's outputs).
type radioTable struct {
	slots []radioEntry
	count int
}

const radioTableMinSize = 1024

// get returns the state cell for addr, claiming an empty slot if the
// address has none. now is the current (monotone) sim time, used by the
// horizon prune when the table needs room. The returned pointer is valid
// until the next get call.
func (rt *radioTable) get(addr uint32, now float64) *hostState {
	if rt.slots == nil {
		rt.slots = make([]radioEntry, radioTableMinSize)
	}
	// Load factor 3/4: rehash (prune, growing only if pruning freed too
	// little) before the probe chains degrade.
	if (rt.count+1)*4 > len(rt.slots)*3 {
		rt.rehash(now)
	}
	mask := uint32(len(rt.slots) - 1)
	for i := (addr * 0x9E3779B1) & mask; ; i = (i + 1) & mask {
		e := &rt.slots[i]
		if !e.occ {
			e.occ = true
			e.addr = addr
			e.st = hostState{}
			rt.count++
			return &e.st
		}
		if e.addr == addr {
			return &e.st
		}
	}
}

// rehash rebuilds the table without entries whose lastActive is more than
// radioHorizon behind now; it doubles the slot count only when live entries
// would still fill half the current table, so a stable working set stays at
// a stable size no matter how many addresses pass through.
func (rt *radioTable) rehash(now float64) {
	old := rt.slots
	live := 0
	for i := range old {
		if old[i].occ && now-old[i].st.lastActive <= radioHorizon {
			live++
		}
	}
	size := len(old)
	for (live+1)*2 > size {
		size *= 2
	}
	rt.slots = make([]radioEntry, size)
	rt.count = 0
	mask := uint32(size - 1)
	for i := range old {
		e := &old[i]
		if !e.occ || now-e.st.lastActive > radioHorizon {
			continue
		}
		for j := (e.addr * 0x9E3779B1) & mask; ; j = (j + 1) & mask {
			if !rt.slots[j].occ {
				rt.slots[j] = *e
				rt.count++
				break
			}
		}
	}
}

// SetDense switches the model's per-host radio state between the default
// map (per-address allocation, unbounded) and the dense bounded table
// (O(active radios) memory, no per-address allocation). The two are
// byte-identical in every output; dense mode additionally makes
// ResetRadioState O(1). Switching discards existing radio state, so call it
// before the first probe.
func (m *Model) SetDense(on bool) {
	if on {
		m.denseRadio = &radioTable{}
		m.state = nil
	} else {
		m.denseRadio = nil
		m.state = make(map[ipaddr.Addr]*hostState)
	}
}

// Dense reports whether the model is in dense-state mode.
func (m *Model) Dense() bool { return m.denseRadio != nil }
