package netmodel

import (
	"timeouts/internal/ipaddr"
	"timeouts/internal/ipmeta"
	"timeouts/internal/xrand"
)

// TTL modeling. Replies arrive with their initial TTL decremented once per
// router hop. The paper used received-TTL consistency to identify
// firewall-forged TCP RSTs: "this cluster of responses all had the same TTL
// and applied to all probes to entire /24 blocks" (§5.3). Modeling hop
// counts makes that detection non-trivial, as it was for the authors: host
// replies within a /24 vary in initial TTL (OS mix) and path length, while
// a perimeter firewall answers every address of the block from one router
// with one stack.

// Additional hash salts for TTL draws.
const (
	saltStackTTL = 50 + iota
	saltHops
	saltBlockHops
)

// baseHops approximates router hops between continents: a dozen within a
// continent, up to the low twenties across.
var baseHops = [ipmeta.NumContinents][ipmeta.NumContinents]int{
	{9, 19, 17, 20, 14, 20},
	{19, 10, 18, 20, 15, 14},
	{17, 18, 9, 15, 13, 20},
	{20, 20, 15, 10, 17, 21},
	{14, 15, 13, 17, 8, 15},
	{20, 14, 20, 21, 15, 9},
}

// initialTTL returns the host's OS-stack initial TTL: most hosts 64 (unix
// derivatives), many 128 (Windows), a few 255 (network gear, some unices).
func initialTTL(seed uint64, a ipaddr.Addr) int {
	u := xrand.HashFloat(seed, uint64(a), saltStackTTL)
	switch {
	case u < 0.58:
		return 64
	case u < 0.92:
		return 128
	default:
		return 255
	}
}

// hostHops returns the hop count between a vantage continent and the host:
// the continental base, plus per-block routing depth, plus a small per-host
// component (subscriber aggregation).
func (p *Population) hostHops(vc ipmeta.Continent, a ipaddr.Addr) int {
	spec, ok := p.spec(a.Prefix())
	if !ok {
		return baseHops[vc][vc]
	}
	seed := p.cfg.Seed
	h := baseHops[vc][spec.AS.Continent]
	h += xrand.HashIntn(4, seed, uint64(a.Prefix()), saltBlockHops)
	h += xrand.HashIntn(3, seed, uint64(a), saltHops)
	return h
}

// edgeHops returns the hop count from a vantage to the block's edge router
// (where perimeter firewalls sit): the block's path minus the subscriber
// tail.
func (p *Population) edgeHops(vc ipmeta.Continent, pre ipaddr.Prefix24) int {
	spec, ok := p.spec(pre)
	if !ok {
		return baseHops[vc][vc]
	}
	h := baseHops[vc][spec.AS.Continent]
	h += xrand.HashIntn(4, p.cfg.Seed, uint64(pre), saltBlockHops)
	return h - 2
}

// ReplyTTL returns the TTL a prober at the vantage continent observes on a
// reply from the host.
func (p *Population) ReplyTTL(vc ipmeta.Continent, a ipaddr.Addr) byte {
	ttl := initialTTL(p.cfg.Seed, a) - p.hostHops(vc, a)
	if ttl < 1 {
		ttl = 1
	}
	return byte(ttl)
}

// FirewallTTL returns the TTL observed on RSTs forged by the block's
// perimeter firewall: a router stack (initial 255) minus the edge path —
// identical for every address of the /24.
func (p *Population) FirewallTTL(vc ipmeta.Continent, pre ipaddr.Prefix24) byte {
	ttl := 255 - p.edgeHops(vc, pre)
	if ttl < 1 {
		ttl = 1
	}
	return byte(ttl)
}

// RouterAddr returns the deterministic address of the hop-th router on the
// path from the vantage to the destination's block, in CGNAT space
// (100.64.0.0/10) so router addresses never collide with the population.
func (p *Population) RouterAddr(vc ipmeta.Continent, dst ipaddr.Addr, hop int) ipaddr.Addr {
	h := xrand.Hash(p.cfg.Seed, uint64(dst.Prefix()), uint64(vc), uint64(hop), 0x7207)
	return ipaddr.Addr(0x64400000 | uint32(h&0x003fffff))
}

// HostHops exposes the modeled hop count for tests and tools.
func (p *Population) HostHops(vc ipmeta.Continent, a ipaddr.Addr) int {
	return p.hostHops(vc, a)
}

// GatewayTTL returns the TTL on ICMP errors from the block gateway.
func (p *Population) GatewayTTL(vc ipmeta.Continent, pre ipaddr.Prefix24) byte {
	ttl := 255 - p.edgeHops(vc, pre) - 1
	if ttl < 1 {
		ttl = 1
	}
	return byte(ttl)
}
