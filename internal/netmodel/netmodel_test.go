package netmodel

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"timeouts/internal/ipaddr"
	"timeouts/internal/ipmeta"
	"timeouts/internal/simnet"
	"timeouts/internal/wire"
)

func testPop(blocks int) *Population {
	return New(Config{Seed: 7, Blocks: blocks})
}

func TestAllocationCoversExactly(t *testing.T) {
	for _, blocks := range []int{len(DefaultCatalog()), 100, 512, 1000} {
		p := New(Config{Seed: 1, Blocks: blocks})
		bs := p.Blocks()
		if len(bs) != blocks {
			t.Fatalf("blocks=%d: allocated %d", blocks, len(bs))
		}
		// Blocks must be contiguous from the base and each must resolve.
		for i, b := range bs {
			if int(b)-int(bs[0]) != i {
				t.Fatalf("non-contiguous allocation at %d", i)
			}
			if _, ok := p.DB().LookupPrefix(b); !ok {
				t.Fatalf("block %s not in DB", b)
			}
		}
	}
}

func TestAllocationMatchesDB(t *testing.T) {
	p := testPop(300)
	if p.DB().NumBlocks() != 300 {
		t.Errorf("DB blocks = %d", p.DB().NumBlocks())
	}
	if got := len(p.DB().ASes()); got != len(DefaultCatalog()) {
		t.Errorf("DB ASes = %d, want %d", got, len(DefaultCatalog()))
	}
}

func TestEveryASGetsABlock(t *testing.T) {
	p := New(Config{Seed: 1, Blocks: len(DefaultCatalog())})
	if got := len(p.DB().ASes()); got != len(DefaultCatalog()) {
		t.Errorf("with minimal blocks, ASes = %d", got)
	}
}

func TestTooFewBlocksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(Config{Seed: 1, Blocks: 3})
}

func TestAddrAtIndexRoundtrip(t *testing.T) {
	p := testPop(64)
	f := func(iRaw uint16) bool {
		i := int(iRaw) % p.NumAddrs()
		a := p.AddrAt(i)
		return p.IndexOf(a) == i && p.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if p.Contains(p.AddrAt(p.NumAddrs())) {
		t.Error("address beyond population contained")
	}
}

func TestProfileDeterministic(t *testing.T) {
	p1 := testPop(128)
	p2 := testPop(128)
	for i := 0; i < 2000; i++ {
		a := p1.AddrAt(i * 13 % p1.NumAddrs())
		if p1.Profile(a) != p2.Profile(a) {
			t.Fatalf("profile of %s differs across identical populations", a)
		}
	}
}

func TestProfileChangesWithSeed(t *testing.T) {
	p1 := New(Config{Seed: 1, Blocks: 128})
	p2 := New(Config{Seed: 2, Blocks: 128})
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		a := p1.AddrAt(i)
		if p1.Profile(a).Responsive == p2.Profile(a).Responsive {
			same++
		}
	}
	if same > n-50 {
		t.Errorf("seeds produce nearly identical populations: %d/%d", same, n)
	}
}

func TestClassShares(t *testing.T) {
	p := testPop(512)
	counts := map[Class]int{}
	responsive := 0
	for i := 0; i < p.NumAddrs(); i++ {
		pr := p.Profile(p.AddrAt(i))
		if pr.Responsive {
			responsive++
			counts[pr.Class]++
		}
	}
	frac := func(c Class) float64 { return float64(counts[c]) / float64(responsive) }
	// The cellular share drives the paper's headline ~5% turtle share.
	if f := frac(ClassCellular); f < 0.03 || f > 0.12 {
		t.Errorf("cellular share = %.3f, want 3-12%%", f)
	}
	if f := frac(ClassSatellite); f > 0.06 {
		t.Errorf("satellite share = %.3f, want small", f)
	}
	if f := frac(ClassQuiet) + frac(ClassDSL); f < 0.5 {
		t.Errorf("wireline share = %.3f, want majority", f)
	}
	respRate := float64(responsive) / float64(p.NumAddrs())
	if respRate < 0.12 || respRate > 0.35 {
		t.Errorf("responsive rate = %.3f", respRate)
	}
}

func TestSpecialAddressesHostNoDevices(t *testing.T) {
	p := testPop(64)
	for _, b := range p.Blocks() {
		bp := p.BlockProfile(b)
		for _, o := range []byte{0, 255} {
			if !bp.IsSpecial(o) {
				t.Fatalf("octet %d must be special in every split", o)
			}
			if p.Profile(b.Addr(o)).Responsive {
				t.Fatalf("special address %s responsive", b.Addr(o))
			}
		}
	}
}

func TestBlockProfileSubnetGeometry(t *testing.T) {
	p := testPop(256)
	for _, b := range p.Blocks() {
		bp := p.BlockProfile(b)
		if bp.HostBits < 2 || bp.HostBits > 8 {
			t.Fatalf("HostBits = %d", bp.HostBits)
		}
		size := bp.SubnetSize()
		if size != 1<<bp.HostBits {
			t.Fatalf("SubnetSize = %d", size)
		}
		// Each subnet has exactly one broadcast and one network octet.
		nb, nn := 0, 0
		for o := 0; o < 256; o++ {
			if bp.IsBroadcast(byte(o)) {
				nb++
			}
			if bp.IsNetwork(byte(o)) {
				nn++
			}
		}
		want := 256 / size
		if nb != want || nn != want {
			t.Fatalf("HostBits=%d: %d broadcast, %d network octets, want %d", bp.HostBits, nb, nn, want)
		}
	}
}

func TestSubnetOf(t *testing.T) {
	bp := BlockProfile{HostBits: 6}
	if bp.SubnetOf(70) != 64 {
		t.Errorf("SubnetOf(70) = %d", bp.SubnetOf(70))
	}
	if !bp.IsBroadcast(127) || !bp.IsNetwork(128) {
		t.Error("subnet boundary octets misclassified")
	}
}

// worldFor builds a network over a population with a test vantage.
func worldFor(p *Population) (*Model, *simnet.Scheduler, *simnet.Network, ipaddr.Addr) {
	m := NewModel(p)
	src := ipaddr.MustParse("240.0.0.1")
	m.AddVantage(src, ipmeta.NorthAmerica)
	sched := &simnet.Scheduler{}
	net := simnet.NewNetwork(sched, m)
	return m, sched, net, src
}

// findAddr scans the population for an address matching pred.
func findAddr(p *Population, pred func(Profile) bool) (ipaddr.Addr, bool) {
	for i := 0; i < p.NumAddrs(); i++ {
		pr := p.Profile(p.AddrAt(i))
		if pred(pr) {
			return pr.Addr, true
		}
	}
	return 0, false
}

func TestEchoReplyEchoesIDSeqPayload(t *testing.T) {
	p := testPop(64)
	m, sched, net, src := worldFor(p)
	_ = m
	dst, ok := findAddr(p, func(pr Profile) bool {
		return pr.Responsive && pr.JoinTime == 0 && pr.Class == ClassQuiet && pr.DupCount == 0 && pr.LossRate < 0.01
	})
	if !ok {
		t.Skip("no quiet responsive host in population")
	}
	var reply *wire.Packet
	var rtt time.Duration
	net.AttachProber(src, func(at simnet.Time, data []byte, count int) {
		pkt, err := wire.Decode(data)
		if err != nil {
			t.Errorf("bad reply: %v", err)
			return
		}
		reply = pkt
		rtt = time.Duration(at)
	})
	echo := &wire.ICMPEcho{Type: wire.ICMPTypeEchoRequest, ID: 0xCAFE, Seq: 42, Payload: []byte("payload")}
	sched.At(0, func() { net.Send(src, wire.EncodeEcho(src, dst, echo)) })
	sched.Run()
	if reply == nil {
		t.Fatal("no reply (unlucky loss draw?)")
	}
	if reply.Echo == nil || reply.Echo.Type != wire.ICMPTypeEchoReply {
		t.Fatalf("reply not an echo response: %+v", reply)
	}
	if reply.Echo.ID != 0xCAFE || reply.Echo.Seq != 42 || string(reply.Echo.Payload) != "payload" {
		t.Errorf("echo fields not mirrored: %+v", reply.Echo)
	}
	if reply.IP.Src != dst || reply.IP.Dst != src {
		t.Errorf("reply addressing wrong: %s -> %s", reply.IP.Src, reply.IP.Dst)
	}
	if rtt < 30*time.Millisecond || rtt > 5*time.Second {
		t.Errorf("quiet-host RTT = %v", rtt)
	}
}

func TestUDPGetsPortUnreachable(t *testing.T) {
	p := testPop(64)
	_, sched, net, src := worldFor(p)
	dst, ok := findAddr(p, func(pr Profile) bool {
		return pr.Responsive && pr.JoinTime == 0 && pr.Class == ClassQuiet && pr.LossRate < 0.01
	})
	if !ok {
		t.Skip("no candidate")
	}
	var got *wire.Packet
	net.AttachProber(src, func(at simnet.Time, data []byte, count int) {
		got, _ = wire.Decode(data)
	})
	u := &wire.UDP{SrcPort: 5000, DstPort: 33435, Payload: []byte{1}}
	sched.At(0, func() { net.Send(src, wire.EncodeUDP(src, dst, u)) })
	sched.Run()
	if got == nil || got.Err == nil {
		t.Fatalf("no ICMP error reply: %+v", got)
	}
	if got.Err.Type != wire.ICMPTypeDstUnreachable || got.Err.Code != wire.ICMPCodePortUnreachable {
		t.Errorf("wrong error type/code: %d/%d", got.Err.Type, got.Err.Code)
	}
	qh, l4, err := got.Err.Quoted()
	if err != nil || qh.Dst != dst || len(l4) < 8 {
		t.Errorf("quote wrong: %+v %d %v", qh, len(l4), err)
	}
}

func TestTCPGetsRST(t *testing.T) {
	p := testPop(64)
	_, sched, net, src := worldFor(p)
	dst, ok := findAddr(p, func(pr Profile) bool {
		if !pr.Responsive || pr.JoinTime != 0 || pr.Class != ClassQuiet || pr.LossRate >= 0.01 {
			return false
		}
		return !New(Config{Seed: 7, Blocks: 64}).BlockProfile(pr.Addr.Prefix()).FirewallTCPRST
	})
	if !ok {
		t.Skip("no candidate")
	}
	var got *wire.Packet
	net.AttachProber(src, func(at simnet.Time, data []byte, count int) {
		got, _ = wire.Decode(data)
	})
	probe := &wire.TCP{SrcPort: 7777, DstPort: 80, Ack: 0xABCD0001, Flags: wire.TCPFlagACK}
	sched.At(0, func() { net.Send(src, wire.EncodeTCP(src, dst, probe)) })
	sched.Run()
	if got == nil || got.TCP == nil {
		t.Fatalf("no TCP reply: %+v", got)
	}
	if got.TCP.Flags&wire.TCPFlagRST == 0 || got.TCP.Seq != 0xABCD0001 || got.TCP.DstPort != 7777 {
		t.Errorf("RST fields: %+v", got.TCP)
	}
	// Host replies carry an OS-stack TTL minus the path hops.
	want := p.ReplyTTL(ipmeta.NorthAmerica, dst)
	if got.IP.TTL != want {
		t.Errorf("host RST TTL = %d, want %d", got.IP.TTL, want)
	}
}

func TestFirewallRSTForWholeBlock(t *testing.T) {
	p := testPop(512)
	_, sched, net, src := worldFor(p)
	var fw ipaddr.Prefix24
	found := false
	for _, b := range p.Blocks() {
		if p.BlockProfile(b).FirewallTCPRST {
			fw, found = b, true
			break
		}
	}
	if !found {
		t.Skip("no firewalled block at this seed")
	}
	replies := 0
	ttls := map[byte]int{}
	var rtts []time.Duration
	net.AttachProber(src, func(at simnet.Time, data []byte, count int) {
		pkt, err := wire.Decode(data)
		if err != nil || pkt.TCP == nil {
			return
		}
		replies++
		ttls[pkt.IP.TTL]++
		rtts = append(rtts, time.Duration(at)-time.Duration(int(pkt.TCP.DstPort))*time.Second)
	})
	// Probe several addresses of the firewalled block, one second apart,
	// encoding the send second in the source port.
	for i := 1; i <= 20; i++ {
		i := i
		sched.At(simnet.Time(i)*time.Second, func() {
			probe := &wire.TCP{SrcPort: uint16(i), DstPort: 80, Ack: 1, Flags: wire.TCPFlagACK}
			net.Send(src, wire.EncodeTCP(src, fw.Addr(byte(i*7)), probe))
		})
	}
	sched.Run()
	if replies != 20 {
		t.Fatalf("firewall answered %d of 20", replies)
	}
	// The paper's firewall signature: one identical TTL for the whole /24.
	if len(ttls) != 1 {
		t.Errorf("firewall TTLs vary across the block: %v", ttls)
	}
	if want := p.FirewallTTL(ipmeta.NorthAmerica, fw); ttls[want] != 20 {
		t.Errorf("firewall TTL map = %v, want all %d", ttls, want)
	}
	for _, r := range rtts {
		if r < 50*time.Millisecond || r > 800*time.Millisecond {
			t.Errorf("firewall RST RTT = %v, want fast", r)
		}
	}
}

func TestBroadcastFanout(t *testing.T) {
	p := testPop(1024)
	_, sched, net, src := worldFor(p)
	// Find a broadcast-enabled /24 and its broadcast octet.
	var target ipaddr.Addr
	found := false
	for _, b := range p.Blocks() {
		bp := p.BlockProfile(b)
		if bp.BroadcastEnabled {
			target = b.Addr(255)
			found = true
			break
		}
	}
	if !found {
		t.Skip("no broadcast-enabled block at this seed")
	}
	var srcs []ipaddr.Addr
	net.AttachProber(src, func(at simnet.Time, data []byte, count int) {
		pkt, err := wire.Decode(data)
		if err == nil && pkt.Echo != nil {
			srcs = append(srcs, pkt.IP.Src)
		}
	})
	echo := &wire.ICMPEcho{Type: wire.ICMPTypeEchoRequest, ID: 1, Seq: 1}
	sched.At(0, func() { net.Send(src, wire.EncodeEcho(src, target, echo)) })
	sched.Run()
	if len(srcs) == 0 {
		t.Fatal("broadcast ping drew no responses")
	}
	for _, s := range srcs {
		if s == target {
			t.Error("a response claimed the broadcast address as source")
		}
		if s.Prefix() != target.Prefix() {
			t.Errorf("responder %s outside the probed /24", s)
		}
	}
}

func TestBroadcastDisabledBlockIsSilent(t *testing.T) {
	p := testPop(512)
	_, sched, net, src := worldFor(p)
	var target ipaddr.Addr
	found := false
	for _, b := range p.Blocks() {
		bp := p.BlockProfile(b)
		if !bp.BroadcastEnabled && bp.HostBits == 8 {
			target = b.Addr(255)
			found = true
			break
		}
	}
	if !found {
		t.Skip("no such block")
	}
	got := 0
	net.AttachProber(src, func(simnet.Time, []byte, int) { got++ })
	echo := &wire.ICMPEcho{Type: wire.ICMPTypeEchoRequest, ID: 1, Seq: 1}
	sched.At(0, func() { net.Send(src, wire.EncodeEcho(src, target, echo)) })
	sched.Run()
	if got != 0 {
		t.Errorf("disabled block produced %d responses", got)
	}
}

func TestDuplicateResponder(t *testing.T) {
	p := testPop(1024)
	_, sched, net, src := worldFor(p)
	dst, ok := findAddr(p, func(pr Profile) bool {
		return pr.Responsive && pr.JoinTime == 0 && pr.DupCount >= 2 && pr.DupCount <= 4 && pr.LossRate < 0.02
	})
	if !ok {
		t.Skip("no moderate duplicator at this seed")
	}
	want := p.Profile(dst).DupCount
	total := 0
	net.AttachProber(src, func(at simnet.Time, data []byte, count int) { total += count })
	// Several probes, spaced out: individual probes can be lost, but every
	// answered probe must draw exactly DupCount copies.
	for i := 0; i < 5; i++ {
		i := i
		sched.At(simnet.Time(i)*100*time.Second, func() {
			echo := &wire.ICMPEcho{Type: wire.ICMPTypeEchoRequest, ID: 3, Seq: uint16(i)}
			net.Send(src, wire.EncodeEcho(src, dst, echo))
		})
	}
	sched.Run()
	if total == 0 || total%want != 0 {
		t.Errorf("duplicator delivered %d copies total, want a multiple of %d", total, want)
	}
}

func TestDoSResponderFloods(t *testing.T) {
	p := testPop(2048)
	_, sched, net, src := worldFor(p)
	dst, ok := findAddr(p, func(pr Profile) bool {
		return pr.Responsive && pr.JoinTime == 0 && pr.DupCount >= 1000 && pr.LossRate < 0.03
	})
	if !ok {
		t.Skip("no DoS responder at this seed")
	}
	want := p.Profile(dst).DupCount
	total := 0
	net.AttachProber(src, func(at simnet.Time, data []byte, count int) { total += count })
	echo := &wire.ICMPEcho{Type: wire.ICMPTypeEchoRequest, ID: 3, Seq: 1}
	sched.At(0, func() { net.Send(src, wire.EncodeEcho(src, dst, echo)) })
	sched.Run()
	if total != want {
		t.Errorf("flood delivered %d copies, profile says %d", total, want)
	}
}

func TestWakeHoldStateMachine(t *testing.T) {
	p := testPop(256)
	m := NewModel(p)
	_, ok := findAddr(p, func(pr Profile) bool { return pr.Responsive && pr.Class == ClassCellular })
	if !ok {
		t.Skip("no cellular host")
	}
	// Use a synthetic profile so IdleTimeout is known exactly.
	pr := Profile{Addr: p.AddrAt(0), Class: ClassCellular, IdleTimeout: 30}

	// Find a first-probe time whose radio is asleep (not in the
	// already-awake band) and whose wake takes comfortably longer than the
	// probe spacing used below.
	base := 0.0
	for tCand := 1000.0; tCand < 50000; tCand += 100 {
		m.ResetRadioState()
		if m.wakeHold(&pr, tCand) > 2 {
			base = tCand
			break
		}
	}
	if base == 0 {
		t.Fatal("could not find an asleep start time")
	}
	m.ResetRadioState()
	h1 := m.wakeHold(&pr, base)
	if h1 < 0.3 || h1 > 55 {
		t.Fatalf("wake hold = %v", h1)
	}
	// A probe one second later is held until the same wake completion.
	h2 := m.wakeHold(&pr, base+1)
	if h2 > h1 {
		t.Errorf("second probe held longer: %v > %v", h2, h1)
	}
	if d := (h1 - 1) - h2; d > 1e-9 || d < -1e-9 {
		t.Errorf("hold difference = %v, want exactly the spacing", h1-1-h2)
	}
	// Shortly after the wake completes the radio is active: no hold.
	if h := m.wakeHold(&pr, base+h1+2); h != 0 {
		t.Errorf("active radio held probe for %v", h)
	}
	// After the idle timeout it may sleep again (unless the awake draw
	// says the device is busy). Each wakeHold call itself refreshes the
	// radio's activity, so reset state between attempts.
	rewake := false
	for k := 1; k <= 60; k++ {
		m.ResetRadioState()
		m.wakeHold(&pr, base)
		if m.wakeHold(&pr, base+h1+pr.IdleTimeout+float64(k)*9) > 0 {
			rewake = true
			break
		}
	}
	if !rewake {
		t.Error("radio never re-slept after idle")
	}
}

func TestSleepyEpisodesDeterministic(t *testing.T) {
	p := testPop(256)
	pr := Profile{Addr: p.AddrAt(5), Class: ClassCellular, Severity: 0.95}
	for t0 := 0.0; t0 < 20000; t0 += 13 {
		e1, ok1 := p.SleepyAt(&pr, t0)
		e2, ok2 := p.SleepyAt(&pr, t0)
		if ok1 != ok2 || e1 != e2 {
			t.Fatalf("sleepy decision at t=%v not deterministic", t0)
		}
	}
}

func TestSleepyBufferedDecays(t *testing.T) {
	// Within a buffered episode, delays decrease one-for-one with time:
	// all responses are released at the episode end.
	p := testPop(256)
	found := false
	for i := 0; i < p.NumAddrs() && !found; i++ {
		pr := p.Profile(p.AddrAt(i))
		if !pr.Responsive || pr.Class != ClassCellular || pr.Severity < 0.8 {
			continue
		}
		for t0 := 0.0; t0 < 86400 && !found; t0 += 5 {
			ev, in := p.SleepyAt(&pr, t0)
			if !in || ev.Mode != SleepyBuffered || ev.Lost || ev.Delay < 20 {
				continue
			}
			ev2, in2 := p.SleepyAt(&pr, t0+5)
			if !in2 || ev2.Mode != SleepyBuffered || ev2.Lost {
				continue
			}
			found = true
			drop := ev.Delay - ev2.Delay
			if drop < 4.8 || drop > 5.2 {
				t.Errorf("buffered delay dropped by %v over 5s, want ~5", drop)
			}
		}
	}
	if !found {
		t.Skip("no buffered episode pair found at this seed")
	}
}

func TestCongestionCorrelatedWithinEpisode(t *testing.T) {
	// Probes seconds apart during one congestion episode must see similar
	// delay — the §4.2 "retries are not independent" property.
	p := testPop(256)
	pr := Profile{Addr: p.AddrAt(99), Class: ClassCongested, Severity: 0.9, AS: ipmeta.AS{Continent: ipmeta.SouthAmerica}}
	big, violations := 0, 0
	for t0 := 0.0; t0 < 200000; t0 += 30 {
		d1 := p.CongestionDelayAt(&pr, 0.8, t0)
		if d1 < 3 {
			continue
		}
		big++
		d2 := p.CongestionDelayAt(&pr, 0.8, t0+3)
		if d2 < d1*0.15 {
			// A probe pair can straddle the episode's end; such pairs are
			// legitimately uncorrelated but must be the rare exception.
			violations++
		}
	}
	if big == 0 {
		t.Skip("no big congestion delay at this seed")
	}
	if frac := float64(violations) / float64(big); frac > 0.2 {
		t.Errorf("%.0f%% of retries after a slow probe were fast: retries look independent", 100*frac)
	}
}

func TestGatewayErrorForUnoccupiedAddress(t *testing.T) {
	p := testPop(512)
	_, sched, net, src := worldFor(p)
	dst, ok := findAddr(p, func(pr Profile) bool {
		return !pr.Responsive && pr.ICMPErrorResponder
	})
	if !ok {
		t.Skip("no error responder")
	}
	var got *wire.Packet
	net.AttachProber(src, func(at simnet.Time, data []byte, count int) {
		got, _ = wire.Decode(data)
	})
	echo := &wire.ICMPEcho{Type: wire.ICMPTypeEchoRequest, ID: 5, Seq: 6}
	sched.At(0, func() { net.Send(src, wire.EncodeEcho(src, dst, echo)) })
	sched.Run()
	if got == nil || got.Err == nil {
		t.Fatal("no gateway error")
	}
	if got.IP.Src != dst.Prefix().Addr(1) {
		t.Errorf("error source = %s, want block gateway", got.IP.Src)
	}
	if qd, err := got.Err.QuotedDst(); err != nil || qd != dst {
		t.Errorf("quoted dst = %v, %v", qd, err)
	}
}

func TestUnregisteredVantagePanics(t *testing.T) {
	p := testPop(64)
	m := NewModel(p)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	m.Respond(ipaddr.MustParse("9.9.9.9"), 0, nil)
}

func TestLateJoinersAppearOverTime(t *testing.T) {
	p := testPop(1024)
	m := NewModel(p)
	joiners := 0
	for i := 0; i < p.NumAddrs(); i++ {
		pr := p.Profile(p.AddrAt(i))
		if pr.Responsive && pr.JoinTime > 0 {
			joiners++
			if m.responsiveAt(&pr, pr.JoinTime-1) {
				t.Fatalf("joiner %s responsive before JoinTime", pr.Addr)
			}
			if !m.responsiveAt(&pr, pr.JoinTime+1) {
				t.Fatalf("joiner %s unresponsive after JoinTime", pr.Addr)
			}
		}
	}
	if joiners == 0 {
		t.Error("population has no late joiners")
	}
}

func TestPropagationSymmetric(t *testing.T) {
	for a := 0; a < ipmeta.NumContinents; a++ {
		for b := 0; b < ipmeta.NumContinents; b++ {
			x := PropagationRTT(ipmeta.Continent(a), ipmeta.Continent(b))
			y := PropagationRTT(ipmeta.Continent(b), ipmeta.Continent(a))
			if x != y {
				t.Errorf("propagation not symmetric: %v vs %v", x, y)
			}
			if a == b && x > 70*time.Millisecond {
				t.Errorf("intra-continent RTT = %v", x)
			}
		}
	}
}

func TestSatelliteProfileBase(t *testing.T) {
	p := testPop(512)
	n := 0
	for i := 0; i < p.NumAddrs(); i++ {
		pr := p.Profile(p.AddrAt(i))
		if pr.Class != ClassSatellite || !pr.Responsive {
			continue
		}
		n++
		if pr.SatBase < 0.5 || pr.SatBase > 1.1 {
			t.Errorf("satellite base = %v", pr.SatBase)
		}
		if pr.SatQueueCap <= 0 {
			t.Error("satellite queue cap missing")
		}
	}
	if n == 0 {
		t.Skip("no satellite hosts at this scale")
	}
}

func TestReplyTTLProperties(t *testing.T) {
	p := testPop(256)
	seen := map[byte]bool{}
	for i := 0; i < 4000; i++ {
		a := p.AddrAt(i * 17 % p.NumAddrs())
		ttl := p.ReplyTTL(ipmeta.NorthAmerica, a)
		if ttl < 1 {
			t.Fatalf("TTL %d out of range", ttl)
		}
		// Received TTL must sit below one of the initial values.
		if ttl > 255 {
			t.Fatalf("TTL %d exceeds any initial", ttl)
		}
		seen[ttl] = true
		// Deterministic.
		if p.ReplyTTL(ipmeta.NorthAmerica, a) != ttl {
			t.Fatal("ReplyTTL not deterministic")
		}
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct TTLs; hosts should vary", len(seen))
	}
}

func TestFirewallTTLConsistentPerBlock(t *testing.T) {
	p := testPop(256)
	for _, b := range p.Blocks()[:50] {
		ttl := p.FirewallTTL(ipmeta.NorthAmerica, b)
		if ttl != p.FirewallTTL(ipmeta.NorthAmerica, b) {
			t.Fatal("FirewallTTL not deterministic")
		}
		if ttl < 220 {
			t.Errorf("firewall TTL %d implausibly low for an edge router", ttl)
		}
	}
}

func TestHostTTLsVaryWithinBlock(t *testing.T) {
	// The property DetectFirewalls depends on: within a /24, host reply
	// TTLs vary (OS mix + hop jitter) while the firewall's is constant.
	p := testPop(512)
	varied := 0
	blocksChecked := 0
	for _, b := range p.Blocks() {
		ttls := map[byte]bool{}
		hosts := 0
		for o := 0; o < 256; o++ {
			pr := p.Profile(b.Addr(byte(o)))
			if pr.Responsive {
				ttls[p.ReplyTTL(ipmeta.NorthAmerica, pr.Addr)] = true
				hosts++
			}
		}
		if hosts >= 10 {
			blocksChecked++
			if len(ttls) > 1 {
				varied++
			}
		}
		if blocksChecked >= 60 {
			break
		}
	}
	if blocksChecked == 0 {
		t.Skip("no dense blocks")
	}
	if float64(varied) < 0.9*float64(blocksChecked) {
		t.Errorf("host TTLs uniform in %d of %d dense blocks", blocksChecked-varied, blocksChecked)
	}
}

func TestCatalogJSONRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, DefaultCatalog()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultCatalog()
	if len(got) != len(want) {
		t.Fatalf("entries = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// A population built from the round-tripped catalog is identical.
	p1 := New(Config{Seed: 5, Blocks: 64, Catalog: want})
	p2 := New(Config{Seed: 5, Blocks: 64, Catalog: got})
	for i := 0; i < 2000; i++ {
		a := p1.AddrAt(i * 7 % p1.NumAddrs())
		if p1.Profile(a) != p2.Profile(a) {
			t.Fatalf("profiles diverge at %s", a)
		}
	}
}

func TestValidateCatalog(t *testing.T) {
	good := DefaultCatalog()
	if err := ValidateCatalog(good); err != nil {
		t.Fatalf("default catalog invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]ASSpec) []ASSpec
	}{
		{"empty", func(s []ASSpec) []ASSpec { return nil }},
		{"zero asn", func(s []ASSpec) []ASSpec { s[0].AS.ASN = 0; return s }},
		{"dup asn", func(s []ASSpec) []ASSpec { s[1].AS.ASN = s[0].AS.ASN; return s }},
		{"zero weight", func(s []ASSpec) []ASSpec { s[0].Weight = 0; return s }},
		{"bad cellfrac", func(s []ASSpec) []ASSpec { s[0].CellularFrac = 1.5; return s }},
		{"bad responsiveness", func(s []ASSpec) []ASSpec { s[0].Responsiveness = 0.95; return s }},
		{"negative sat", func(s []ASSpec) []ASSpec { s[0].SatBaseMS = -1; return s }},
	}
	for _, c := range cases {
		specs := c.mutate(DefaultCatalog())
		if err := ValidateCatalog(specs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadCatalogRejectsUnknownFields(t *testing.T) {
	if _, err := ReadCatalog(bytes.NewReader([]byte(`[{"AS":{"ASN":1},"Weight":1,"Bogus":true}]`))); err == nil {
		t.Error("unknown field accepted")
	}
}

// Property: the model never schedules a delivery with negative delay, and
// every delivery decodes as a valid wire packet addressed back to the
// vantage.
func TestModelDeliveriesWellFormed(t *testing.T) {
	p := testPop(128)
	m := NewModel(p)
	src := ipaddr.MustParse("240.0.0.1")
	m.AddVantage(src, ipmeta.NorthAmerica)
	f := func(idx uint32, tSec uint16, kind uint8) bool {
		dst := p.AddrAt(int(idx) % p.NumAddrs())
		at := simnet.Time(tSec) * simnet.Time(time.Second)
		var pkt []byte
		switch kind % 3 {
		case 0:
			pkt = wire.EncodeEcho(src, dst, &wire.ICMPEcho{Type: wire.ICMPTypeEchoRequest, ID: 1, Seq: 2})
		case 1:
			pkt = wire.EncodeUDP(src, dst, &wire.UDP{SrcPort: 9, DstPort: 33435})
		default:
			pkt = wire.EncodeTCP(src, dst, &wire.TCP{SrcPort: 9, DstPort: 80, Flags: wire.TCPFlagACK})
		}
		for _, d := range m.Respond(src, at, pkt) {
			if d.Delay < 0 {
				return false
			}
			rp, err := wire.Decode(d.Data)
			if err != nil {
				return false
			}
			if rp.IP.Dst != src {
				return false
			}
			if d.Count < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSleepyModeShares(t *testing.T) {
	// The documented Table 7 calibration: buffered episodes are the most
	// common event class, sustained episodes are rare but long, blackouts
	// in between (see MODEL.md).
	p := testPop(256)
	counts := map[SleepyMode]int{}
	probes := map[SleepyMode]int{}
	hosts := 0
	for i := 0; i < p.NumAddrs() && hosts < 400; i++ {
		pr := p.Profile(p.AddrAt(i))
		if !pr.Responsive || pr.Class != ClassCellular || pr.Severity < 0.6 {
			continue
		}
		hosts++
		// Sample one probe per 2-hour window across a simulated week; the
		// mode of each distinct episode is counted once via its window.
		lastWindow := -1
		for w := 0; w < 7*12; w++ {
			tt := float64(w)*7200 + 3600
			if ev, in := p.SleepyAt(&pr, tt); in {
				probes[ev.Mode]++
				if w != lastWindow {
					counts[ev.Mode]++
					lastWindow = w
				}
			}
		}
	}
	total := counts[SleepyBuffered] + counts[SleepySustained] + counts[SleepyBlackout]
	if total < 50 {
		t.Skipf("only %d episodes sampled", total)
	}
	bufShare := float64(counts[SleepyBuffered]) / float64(total)
	susShare := float64(counts[SleepySustained]) / float64(total)
	// Sustained episodes are long, so single-sample-per-window hits them
	// disproportionately often; correct roughly by duration ratio is
	// overkill — just assert the ordering and bounds.
	if bufShare < 0.35 {
		t.Errorf("buffered share = %.2f, want dominant", bufShare)
	}
	if susShare > 0.45 {
		t.Errorf("sustained share = %.2f, want minority of episodes", susShare)
	}
}
