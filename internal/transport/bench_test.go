package transport

import (
	"testing"

	"timeouts/internal/simnet"
)

// BenchmarkTransportSend measures one datagram through each transport's
// send+deliver path — the per-probe cost every prober and the rtt plane pay.
// Both sub-benchmarks feed the bench-regression gate (make bench-compare).
func BenchmarkTransportSend(b *testing.B) {
	b.Run("sim", func(b *testing.B) {
		sched := &simnet.Scheduler{}
		src, dst := NewSimLink(sched, Addr{Port: 1}, Addr{Port: 2}, nil)
		n := 0
		dst.SetHandler(func(at Time, from Addr, data []byte, count int) { n += count })
		pkt := make([]byte, 128)
		for i := 0; i < 256; i++ { // warm the event pool and link free list
			src.SendTo(dst.LocalAddr(), pkt)
			sched.Step()
		}
		n = 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.SendTo(dst.LocalAddr(), pkt)
			sched.Step()
		}
		if n != b.N {
			b.Fatalf("delivered %d of %d", n, b.N)
		}
	})
	// The udp sub-benchmark times SendTo alone — a blocking round trip would
	// measure kernel scheduling latency, far too noisy for a regression gate.
	// A peer drains in the background so the socket buffer never fills.
	b.Run("udp", func(b *testing.B) {
		src, err := NewUDP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer src.Close()
		dst, err := NewUDP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer dst.Close()
		dst.SetHandler(func(at Time, from Addr, data []byte, count int) {})
		pkt := make([]byte, 128)
		for i := 0; i < 256; i++ {
			if err := src.SendTo(dst.LocalAddr(), pkt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.SendTo(dst.LocalAddr(), pkt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
