package transport

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"timeouts/internal/simnet"
)

// TestUDPDeadlineBoundsOneRecvOnly pins the paper-facing deadline contract:
// a read deadline bounds a single Recv call, never the socket's lifetime. A
// datagram that arrives after a Recv timed out is NOT lost — the next Recv
// returns it, which is what lets callers count late responses
// (rtt_after_timeout) instead of conflating them with loss.
func TestUDPDeadlineBoundsOneRecvOnly(t *testing.T) {
	a, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Recv with nothing in flight: the deadline must fire as
	// ErrDeadlineExceeded, roughly on time.
	buf := make([]byte, 64)
	start := time.Now()
	_, _, _, err = b.Recv(buf, b.Now()+30*time.Millisecond)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("empty Recv: err = %v, want ErrDeadlineExceeded", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond || waited > 2*time.Second {
		t.Fatalf("deadline fired after %v", waited)
	}

	// A "late" packet: sent after the receiver's deadline already expired.
	if err := a.SendTo(b.LocalAddr(), []byte("late-reply")); err != nil {
		t.Fatal(err)
	}
	n, from, _, err := b.Recv(buf, b.Now()+2*time.Second)
	if err != nil {
		t.Fatalf("post-deadline Recv: %v", err)
	}
	if string(buf[:n]) != "late-reply" {
		t.Fatalf("got %q", buf[:n])
	}
	if from != a.LocalAddr() {
		t.Fatalf("from = %+v, want %+v", from, a.LocalAddr())
	}
}

// TestSimRecvDeadline pins the same contract on the simulated transport,
// where an expired deadline burns virtual time instead of wall time.
func TestSimRecvDeadline(t *testing.T) {
	sched := &simnet.Scheduler{}
	a, b := NewSimLink(sched, Addr{Port: 1}, Addr{Port: 2},
		func(_, _ Addr, _ int, _ Time) Time { return Time(50 * time.Millisecond) })

	// Nothing in flight: Recv advances the clock to the deadline and fails.
	buf := make([]byte, 64)
	_, _, _, err := b.Recv(buf, Time(30*time.Millisecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if now := sched.Now(); now != Time(30*time.Millisecond) {
		t.Fatalf("virtual clock at %v, want 30ms", now)
	}

	// A packet due at t=80ms: a Recv deadlined at 60ms must miss it without
	// consuming it, and a later Recv must still deliver it.
	if err := a.SendTo(b.LocalAddr(), []byte("slow")); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = b.Recv(buf, Time(60*time.Millisecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	n, _, at, err := b.Recv(buf, Time(200*time.Millisecond))
	if err != nil || string(buf[:n]) != "slow" {
		t.Fatalf("late sim packet: n=%d err=%v", n, err)
	}
	if at != Time(80*time.Millisecond) {
		t.Fatalf("delivered at %v, want 80ms", at)
	}
	if sched.Now() != at {
		t.Fatalf("clock %v != delivery time %v", sched.Now(), at)
	}
}

// TestUDPSetHandlerNilFromHandler pins that a handler may detach itself:
// SetHandler(nil) called from inside the handler returns instead of waiting
// on the pump goroutine it is running on (which would deadlock), and no
// further packets are delivered to the handler afterwards.
func TestUDPSetHandlerNilFromHandler(t *testing.T) {
	a, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	detached := make(chan struct{})
	var calls atomic.Int32
	b.SetHandler(func(at Time, from Addr, data []byte, count int) {
		if calls.Add(1) == 1 {
			b.SetHandler(nil)
			close(detached)
		}
	})
	if err := a.SendTo(b.LocalAddr(), []byte("first")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-detached:
	case <-time.After(5 * time.Second):
		t.Fatal("SetHandler(nil) from inside the handler deadlocked")
	}

	// The pump is gone: a packet sent now sits in the socket buffer until a
	// Recv pulls it, and the old handler never sees it.
	if err := a.SendTo(b.LocalAddr(), []byte("second")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _, _, err := b.Recv(buf, b.Now()+2*time.Second)
	if err != nil {
		t.Fatalf("Recv after self-detach: %v", err)
	}
	if string(buf[:n]) != "second" {
		t.Fatalf("got %q", buf[:n])
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("handler ran %d times after detaching itself", got)
	}
}

// TestSimLinkClose pins the closed-endpoint contract both ways.
func TestSimLinkClose(t *testing.T) {
	sched := &simnet.Scheduler{}
	a, b := NewSimLink(sched, Addr{Port: 1}, Addr{Port: 2}, nil)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Sending to a closed peer is silent loss, like a datagram socket.
	if err := a.SendTo(b.LocalAddr(), []byte("x")); err != nil {
		t.Fatalf("send to closed peer: %v", err)
	}
	if _, _, _, err := b.Recv(make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv on closed: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.SendTo(b.LocalAddr(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed: %v", err)
	}
}
