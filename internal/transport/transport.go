// Package transport is the probe I/O boundary: it carries encoded wire
// packets between a local endpoint and a network, which may be the
// deterministic simulation (SimTransport over simnet) or a real UDP socket
// (UDPTransport over net.UDPConn). The probers (survey, zmapper, scamper)
// and the rtt measurement plane drive all packet I/O through the Transport
// interface, so the same encoders, decoders and session logic run unchanged
// against either network — with the simulation serving as the byte-exact
// oracle for everything the live path does (DESIGN.md §13).
//
// The hot path is allocation-free for both implementations: packets are
// encoded into pooled wire buffers, sim deliveries ride pooled events, and
// the UDP path sticks to the netip-based UDPConn methods that avoid per-op
// allocations. alloc_test.go pins 0 allocs/op on send and receive for both.
package transport

import (
	"errors"
	"time"

	"timeouts/internal/ipaddr"
)

// Time is a transport clock reading: the duration since the transport's
// epoch. SimTransport's epoch is the simulation epoch, so its readings equal
// simnet.Time; UDPTransport's is the (monotonic) instant the socket was
// opened. Timestamps from different transports are not comparable.
type Time = time.Duration

// Addr identifies a transport peer: an IPv4 address plus UDP port.
// Endpoints that exchange full IPv4-encapsulated wire packets (the probers
// over the sim fabric) carry addressing inside the packet and use InPacket.
type Addr struct {
	IP   ipaddr.Addr
	Port uint16
}

// InPacket is the destination to pass to SendTo on transports whose packets
// carry their own addressing — full IPv4-encapsulated wire packets routed by
// the sim fabric. Such transports ignore the argument.
var InPacket = Addr{}

// Handler receives inbound packets on a handler-driven transport. data is
// only valid for the duration of the call (receive buffers are pooled or
// reused); count is >= 1 — identical packets batched by the sim fabric share
// one call, exactly as simnet delivers them.
type Handler func(at Time, from Addr, data []byte, count int)

// Errors returned by transports.
var (
	// ErrDeadlineExceeded reports that Recv's deadline passed with no
	// packet. On the sim it also covers "the event queue ran dry": nothing
	// can ever arrive, which a live socket expresses only as a timeout.
	ErrDeadlineExceeded = errors.New("transport: receive deadline exceeded")
	// ErrClosed reports I/O on a closed transport.
	ErrClosed = errors.New("transport: closed")
)

// Transport carries encoded wire packets between the local endpoint and the
// network. A transport is driven in exactly one of two modes:
//
//   - handler mode (SetHandler): inbound packets are pushed to the handler —
//     inside the event loop for the sim, from a pump goroutine for UDP. This
//     is how the probers and the rtt server consume the network.
//   - receive mode (Recv): the caller pulls packets synchronously, bounded
//     by a deadline. This is how the rtt client paces its isochronous
//     schedule; on the sim, Recv pumps the shared scheduler, so a whole
//     client/server session advances deterministically under the caller.
//
// Mixing the modes on one transport is a bug.
type Transport interface {
	// LocalAddr identifies the endpoint. Sim endpoints have port 0.
	LocalAddr() Addr

	// Now reads the transport clock.
	Now() Time

	// SendTo transmits pkt to the peer at to (ignored by transports whose
	// packets carry their own addressing — pass InPacket there). The caller
	// may reuse pkt as soon as SendTo returns: implementations either hand
	// it off synchronously or copy into a pooled buffer.
	SendTo(to Addr, pkt []byte) error

	// Recv delivers the next inbound packet into buf, reporting its length,
	// sender, and arrival time on the transport clock. deadline is absolute
	// on that clock; once it passes, Recv returns ErrDeadlineExceeded — for
	// the sim this advances the virtual clock to the deadline, mirroring the
	// time a live socket would burn blocking. A zero deadline means no limit.
	Recv(buf []byte, deadline Time) (n int, from Addr, at Time, err error)

	// SetHandler switches the transport to handler mode (nil detaches).
	SetHandler(h Handler)

	// Close releases the endpoint. Pending handler callbacks stop.
	Close() error
}

// WallClocked marks transports whose clock advances in real time and whose
// Now may be read from any goroutine (UDPTransport; Faulty forwards the
// property of its inner transport). Timer-driven components — the rtt
// server's periodic idle sweeper — key on it: a simulation clock advances
// only under its event loop and must not be read concurrently, so such
// components stay quiescent on sim transports and leave all timekeeping to
// the deterministic schedule.
type WallClocked interface {
	// WallClockSafe reports whether Now is safe to call from any goroutine.
	WallClockSafe() bool
}

// IsWallClocked reports whether tr declares a concurrently readable
// wall clock.
func IsWallClocked(tr Transport) bool {
	w, ok := tr.(WallClocked)
	return ok && w.WallClockSafe()
}

// Sequencer is the deterministic-merge extension implemented by transports
// that can order deliveries globally — the sim, whose fabric tags every
// delivery with the (send rank, delivery index) identity the sharded
// byte-identical merge is keyed on. Probers type-assert for it; live
// transports do not implement it, and sharded live runs would need an
// ordering of their own.
type Sequencer interface {
	// SetSendRank sets the global probe rank recorded on deliveries caused
	// by subsequent SendTo calls.
	SetSendRank(rank uint64)
	// LastDeliveryTag returns the (rank, index) identity of the delivery
	// whose handler is currently executing.
	LastDeliveryTag() (rank uint64, index int)
}
