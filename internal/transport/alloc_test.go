package transport

import (
	"testing"
	"time"

	"timeouts/internal/simnet"
)

// The transport send/receive hot paths must not allocate in steady state:
// pooled packet buffers, recycled delivery events and reusable scratch mean
// a long-running measurement session leaves no garbage per probe
// (DESIGN.md §6, §13). These tests pin 0 allocs/op on both implementations.

func TestSimLinkRecvAllocFree(t *testing.T) {
	sched := &simnet.Scheduler{}
	a, b := NewSimLink(sched, Addr{Port: 1}, Addr{Port: 2}, nil)
	pkt := make([]byte, 128)
	buf := make([]byte, 256)
	xfer := func() {
		if err := a.SendTo(b.LocalAddr(), pkt); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := b.Recv(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		xfer() // warm the buffer pool, event free list and wheel
	}
	if allocs := testing.AllocsPerRun(1000, xfer); allocs != 0 {
		t.Errorf("sim link send+recv allocates %.1f/op, want 0", allocs)
	}
}

func TestSimLinkHandlerAllocFree(t *testing.T) {
	sched := &simnet.Scheduler{}
	a, b := NewSimLink(sched, Addr{Port: 1}, Addr{Port: 2}, nil)
	got := 0
	b.SetHandler(func(at Time, from Addr, data []byte, count int) { got += count })
	pkt := make([]byte, 128)
	xfer := func() {
		if err := a.SendTo(b.LocalAddr(), pkt); err != nil {
			t.Fatal(err)
		}
		sched.Step()
	}
	for i := 0; i < 64; i++ {
		xfer()
	}
	if allocs := testing.AllocsPerRun(1000, xfer); allocs != 0 {
		t.Errorf("sim link send+dispatch allocates %.1f/op, want 0", allocs)
	}
	if got == 0 {
		t.Fatal("handler never ran")
	}
}

func TestUDPAllocFree(t *testing.T) {
	a, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	pkt := make([]byte, 128)
	buf := make([]byte, 256)
	xfer := func() {
		if err := a.SendTo(b.LocalAddr(), pkt); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := b.Recv(buf, b.Now()+time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		xfer()
	}
	if allocs := testing.AllocsPerRun(500, xfer); allocs != 0 {
		t.Errorf("udp send+recv allocates %.1f/op, want 0", allocs)
	}
}
