package transport

import (
	"timeouts/internal/ipaddr"
	"timeouts/internal/simnet"
	"timeouts/internal/wire"
)

// DelayFunc computes the one-way delay of a packet on a link-mode sim
// transport, as a pure function of endpoints, size and send time — keeping
// link sessions exactly reproducible per configuration.
type DelayFunc func(from, to Addr, size int, at Time) Time

// SimTransport is the Transport over the deterministic simulation. It runs
// in one of two wirings:
//
//   - network mode (NewSim): the endpoint is a prober attached to a
//     simnet.Network, whose fabric answers its probes. SendTo routes on the
//     packet's own IPv4 header (pass InPacket); deliveries keep the exact
//     scheduling, batching and (rank, index) tagging of the direct simnet
//     path, so refactored probers stay byte-identical — and the transport
//     implements Sequencer for the sharded merge.
//
//   - link mode (NewSimLink): two endpoints exchange datagrams with each
//     other through a shared scheduler and a DelayFunc — a deterministic
//     loopback for client/server sessions (the rtt plane's sim oracle).
//
// Everything runs on the single-threaded event loop; SimTransport is not
// safe for concurrent use, matching the rest of the simulation.
type SimTransport struct {
	sched  *simnet.Scheduler
	net    *simnet.Network // network mode; nil in link mode
	addr   Addr
	h      Handler
	peer   *SimTransport // link mode
	delay  DelayFunc     // link mode
	closed bool

	// Receive-mode inbound FIFO: packets copied into pooled buffers while
	// waiting for Recv. Entry storage and buffers are recycled, so the
	// steady state allocates nothing.
	q     []simInPkt
	qHead int

	// Pooled link-mode delivery events (intrusive free list, single thread).
	freeEv *linkEvent
}

// simInPkt is one queued inbound packet awaiting Recv.
type simInPkt struct {
	at    Time
	from  Addr
	buf   *[]byte
	n     int
	count int
}

// linkEvent delivers one link-mode packet to its destination endpoint.
type linkEvent struct {
	src  *SimTransport // owner of the free list this event recycles into
	dst  *SimTransport
	from Addr
	buf  *[]byte
	n    int
	next *linkEvent
}

// Run implements simnet.Event: deliver and recycle.
func (e *linkEvent) Run(now simnet.Time) {
	src, dst, from, buf, n := e.src, e.dst, e.from, e.buf, e.n
	e.src, e.dst, e.buf = nil, nil, nil
	e.next = src.freeEv
	src.freeEv = e
	if dst.closed {
		wire.PutBuf(buf)
		return
	}
	if dst.h != nil {
		dst.h(now, from, (*buf)[:n], 1)
		wire.PutBuf(buf)
		return
	}
	dst.enqueueOwned(now, from, buf, n, 1)
}

// NewSim attaches a network-mode endpoint for the prober at ip. Close
// detaches it.
func NewSim(net *simnet.Network, ip ipaddr.Addr) *SimTransport {
	t := &SimTransport{sched: net.Scheduler(), net: net, addr: Addr{IP: ip}}
	net.AttachProber(ip, t.dispatch)
	return t
}

// NewSimLink creates a linked pair of endpoints exchanging datagrams through
// sched with per-packet delays from delay (nil: zero delay).
func NewSimLink(sched *simnet.Scheduler, a, b Addr, delay DelayFunc) (*SimTransport, *SimTransport) {
	ta := &SimTransport{sched: sched, addr: a, delay: delay}
	tb := &SimTransport{sched: sched, addr: b, delay: delay}
	ta.peer, tb.peer = tb, ta
	return ta, tb
}

// Scheduler returns the driving scheduler.
func (t *SimTransport) Scheduler() *simnet.Scheduler { return t.sched }

// Network returns the wrapped network in network mode (nil in link mode).
func (t *SimTransport) Network() *simnet.Network { return t.net }

// LocalAddr implements Transport.
func (t *SimTransport) LocalAddr() Addr { return t.addr }

// Now implements Transport: the simulation clock.
func (t *SimTransport) Now() Time { return t.sched.Now() }

// SetHandler implements Transport. Packets already queued for Recv stay
// queued; new deliveries go to h.
func (t *SimTransport) SetHandler(h Handler) { t.h = h }

// SendTo implements Transport. In network mode the destination rides inside
// the packet's IPv4 header and to is ignored; in link mode the packet is
// copied into a pooled buffer and delivered to the peer after the link
// delay. A closed peer loses the packet silently, like a datagram socket.
func (t *SimTransport) SendTo(to Addr, pkt []byte) error {
	if t.closed {
		return ErrClosed
	}
	if t.net != nil {
		t.net.Send(t.addr.IP, pkt)
		return nil
	}
	p := t.peer
	if p == nil || p.closed {
		return nil
	}
	var d Time
	if t.delay != nil {
		d = t.delay(t.addr, p.addr, len(pkt), t.sched.Now())
	}
	ev := t.freeEv
	if ev == nil {
		ev = &linkEvent{}
	} else {
		t.freeEv = ev.next
		ev.next = nil
	}
	buf := wire.GetBuf()
	*buf = append((*buf)[:0], pkt...)
	ev.src, ev.dst, ev.from, ev.buf, ev.n = t, p, t.addr, buf, len(pkt)
	t.sched.AfterEvent(d, ev)
	return nil
}

// Recv implements Transport. With the queue empty it pumps the shared
// scheduler — advancing virtual time and running any endpoint's handlers
// along the way — until a packet arrives for this endpoint or the deadline
// passes. When the event queue runs dry nothing can ever arrive, which Recv
// reports as ErrDeadlineExceeded, the same face a silent live socket wears.
func (t *SimTransport) Recv(buf []byte, deadline Time) (int, Addr, Time, error) {
	for {
		if t.closed {
			return 0, Addr{}, t.sched.Now(), ErrClosed
		}
		if t.qHead < len(t.q) {
			pk := &t.q[t.qHead]
			n := copy(buf, (*pk.buf)[:pk.n])
			at, from := pk.at, pk.from
			pk.count--
			if pk.count <= 0 {
				wire.PutBuf(pk.buf)
				pk.buf = nil
				t.qHead++
				if t.qHead == len(t.q) {
					t.q, t.qHead = t.q[:0], 0
				}
			}
			return n, from, at, nil
		}
		next, ok := t.sched.NextEventTime()
		if !ok || (deadline > 0 && next > deadline) {
			if deadline > 0 && t.sched.Now() < deadline {
				// Burn the virtual time a live socket would spend blocked.
				t.sched.RunUntil(deadline)
			}
			return 0, Addr{}, t.sched.Now(), ErrDeadlineExceeded
		}
		t.sched.Step()
	}
}

// Close implements Transport: detaches the endpoint and releases queued
// buffers. Packets in flight to this endpoint are dropped on arrival.
func (t *SimTransport) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if t.net != nil {
		t.net.DetachProber(t.addr.IP)
	}
	for i := t.qHead; i < len(t.q); i++ {
		if t.q[i].buf != nil {
			wire.PutBuf(t.q[i].buf)
			t.q[i].buf = nil
		}
	}
	t.q, t.qHead = nil, 0
	return nil
}

// SetSendRank implements Sequencer (network mode; no-op on links).
func (t *SimTransport) SetSendRank(r uint64) {
	if t.net != nil {
		t.net.SetSendRank(r)
	}
}

// LastDeliveryTag implements Sequencer (network mode; zeros on links).
func (t *SimTransport) LastDeliveryTag() (uint64, int) {
	if t.net == nil {
		return 0, 0
	}
	dt := t.net.LastDeliveryTag()
	return dt.Rank, dt.Index
}

// dispatch is the simnet receive handler: hand to the user handler, or copy
// into a pooled buffer and queue for Recv.
func (t *SimTransport) dispatch(at simnet.Time, data []byte, count int) {
	if t.h != nil {
		t.h(at, InPacket, data, count)
		return
	}
	buf := wire.GetBuf()
	*buf = append((*buf)[:0], data...)
	t.enqueueOwned(at, InPacket, buf, len(data), count)
}

// enqueueOwned appends a packet whose pooled buffer the queue now owns.
func (t *SimTransport) enqueueOwned(at Time, from Addr, buf *[]byte, n, count int) {
	t.q = append(t.q, simInPkt{at: at, from: from, buf: buf, n: n, count: count})
}
