package transport

import (
	"sync/atomic"

	"timeouts/internal/faults"
)

// Faulty wraps an inner Transport and applies a deterministic faults.Plan to
// inbound packets: drops (WireConfig.DropRate), bit corruption, truncation
// and duplication, keyed on the packet's arrival index. It is how the live
// plane's tests exercise loss and noise on a real loopback socket with the
// same seeded plans the simulation uses — fixed seed, fixed faults, as long
// as the underlying delivery order is stable (single in-order flow).
//
// Outbound packets pass through untouched; faulting one direction keeps the
// arrival index an unambiguous key.
type Faulty struct {
	inner Transport
	plan  *faults.Plan

	rank atomic.Uint64 // next inbound arrival index

	// Stats counts applied faults (atomically; the handler pump is a
	// separate goroutine on live transports).
	dropped, corrupted, truncated, duplicated atomic.Uint64

	// Receive-mode duplicate stash: extra copies handed out by later Recvs.
	dupBuf  []byte
	dupN    int
	dupLeft int
	dupFrom Addr
	dupAt   Time
}

// NewFaulty wraps inner with the given fault plan (nil: transparent).
func NewFaulty(inner Transport, plan *faults.Plan) *Faulty {
	return &Faulty{inner: inner, plan: plan}
}

// Dropped returns how many inbound packets the wrapper dropped.
func (f *Faulty) Dropped() uint64 { return f.dropped.Load() }

// Corrupted returns how many inbound packets had a bit flipped.
func (f *Faulty) Corrupted() uint64 { return f.corrupted.Load() }

// Truncated returns how many inbound packets were cut short.
func (f *Faulty) Truncated() uint64 { return f.truncated.Load() }

// Duplicated returns how many inbound packets were duplicated.
func (f *Faulty) Duplicated() uint64 { return f.duplicated.Load() }

// LocalAddr implements Transport.
func (f *Faulty) LocalAddr() Addr { return f.inner.LocalAddr() }

// Now implements Transport.
func (f *Faulty) Now() Time { return f.inner.Now() }

// WallClockSafe forwards the inner transport's wall-clock property.
func (f *Faulty) WallClockSafe() bool { return IsWallClocked(f.inner) }

// SendTo implements Transport (outbound passes through clean).
func (f *Faulty) SendTo(to Addr, pkt []byte) error { return f.inner.SendTo(to, pkt) }

// Close implements Transport.
func (f *Faulty) Close() error { return f.inner.Close() }

// apply mutates one inbound packet per the plan. It returns the packet's
// (possibly truncated) length, how many extra copies to deliver, and whether
// the packet survives at all.
func (f *Faulty) apply(data []byte) (n, extra int, keep bool) {
	n = len(data)
	rank := f.rank.Add(1) - 1
	if f.plan.WireDropFor(rank, 0) {
		f.dropped.Add(1)
		return 0, 0, false
	}
	if ft, ok := f.plan.WireFaultFor(rank, 0, n); ok {
		switch ft.Kind {
		case faults.WireCorrupt:
			data[ft.Bit/8] ^= 1 << (ft.Bit % 8)
			f.corrupted.Add(1)
		case faults.WireTruncate:
			n = ft.Len
			f.truncated.Add(1)
		case faults.WireDuplicate:
			extra = ft.Extra
			f.duplicated.Add(1)
		}
	}
	return n, extra, true
}

// SetHandler implements Transport, interposing the fault plan ahead of h.
// Duplicates become extra back-to-back handler calls.
func (f *Faulty) SetHandler(h Handler) {
	if h == nil {
		f.inner.SetHandler(nil)
		return
	}
	f.inner.SetHandler(func(at Time, from Addr, data []byte, count int) {
		n, extra, keep := f.apply(data)
		if !keep {
			return
		}
		for i := 0; i <= extra; i++ {
			h(at, from, data[:n], count)
		}
	})
}

// Recv implements Transport, applying the fault plan to each arriving
// packet: dropped packets are skipped (the deadline still bounds the wait),
// duplicated ones are stashed and re-delivered by subsequent Recv calls.
func (f *Faulty) Recv(buf []byte, deadline Time) (int, Addr, Time, error) {
	if f.dupLeft > 0 {
		f.dupLeft--
		return copy(buf, f.dupBuf[:f.dupN]), f.dupFrom, f.dupAt, nil
	}
	for {
		n, from, at, err := f.inner.Recv(buf, deadline)
		if err != nil {
			return n, from, at, err
		}
		kn, extra, keep := f.apply(buf[:n])
		if !keep {
			continue
		}
		if extra > 0 {
			if cap(f.dupBuf) < kn {
				f.dupBuf = make([]byte, kn)
			}
			f.dupN = copy(f.dupBuf[:cap(f.dupBuf)], buf[:kn])
			f.dupLeft, f.dupFrom, f.dupAt = extra, from, at
		}
		return kn, from, at, nil
	}
}
