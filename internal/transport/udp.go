package transport

import (
	"errors"
	"net"
	"net/netip"
	"os"
	"runtime"
	"sync"
	"time"

	"timeouts/internal/ipaddr"
)

// udpPumpSlice bounds how long the handler pump blocks in one read, so
// SetHandler(nil) detaches promptly without closing the socket.
const udpPumpSlice = 100 * time.Millisecond

// udpRecvBufLen fits any UDP datagram the measurement plane exchanges.
const udpRecvBufLen = 64 << 10

// UDPTransport is the Transport over a real IPv4 UDP socket. Timestamps are
// monotonic durations since the socket was opened; deadlines map onto the
// kernel's read deadlines — and because a deadline only bounds one Recv
// call, a datagram that arrives after a per-probe timeout still sits in the
// socket buffer and is delivered by the next Recv, which is what lets the
// rtt client count late responses (rtt_after_timeout) instead of losing
// them, per the paper's core observation.
//
// The send and receive paths use the netip-based UDPConn methods, which
// perform no per-operation allocations (pinned by alloc_test.go).
type UDPTransport struct {
	conn  *net.UDPConn
	epoch time.Time
	local Addr

	mu      sync.Mutex
	closed  bool
	pumping bool
	pumpGen int    // incremented to stop the current pump
	pumpGID uint64 // goroutine id of the current pump, for re-entry detection
	pumpWG  sync.WaitGroup
}

// NewUDP opens a UDP endpoint on laddr (e.g. "127.0.0.1:0" or ":2112").
func NewUDP(laddr string) (*UDPTransport, error) {
	ua, err := net.ResolveUDPAddr("udp4", laddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp4", ua)
	if err != nil {
		return nil, err
	}
	t := &UDPTransport{conn: conn, epoch: time.Now()}
	if la, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		t.local = Addr{Port: uint16(la.Port)}
		if ip4 := la.IP.To4(); ip4 != nil {
			t.local.IP = ipaddr.FromBytes4([4]byte(ip4))
		}
	}
	return t, nil
}

// ResolveUDP resolves "host:port" to a transport address (IPv4 only, like
// the rest of the measurement plane).
func ResolveUDP(s string) (Addr, error) {
	ua, err := net.ResolveUDPAddr("udp4", s)
	if err != nil {
		return Addr{}, err
	}
	a := Addr{Port: uint16(ua.Port)}
	if ip4 := ua.IP.To4(); ip4 != nil {
		a.IP = ipaddr.FromBytes4([4]byte(ip4))
	}
	return a, nil
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() Addr { return t.local }

// Now implements Transport: monotonic time since the socket opened.
func (t *UDPTransport) Now() Time { return time.Since(t.epoch) }

// WallClockSafe reports that the UDP clock (monotonic time since the socket
// opened) may be read from any goroutine — the property the rtt server's
// periodic idle sweeper requires.
func (t *UDPTransport) WallClockSafe() bool { return true }

// SendTo implements Transport.
func (t *UDPTransport) SendTo(to Addr, pkt []byte) error {
	ap := netip.AddrPortFrom(netip.AddrFrom4(to.IP.Bytes4()), to.Port)
	_, err := t.conn.WriteToUDPAddrPort(pkt, ap)
	if err != nil && t.isClosed() {
		return ErrClosed
	}
	return err
}

// Recv implements Transport. deadline is absolute on the transport clock;
// zero blocks until a packet or Close.
func (t *UDPTransport) Recv(buf []byte, deadline Time) (int, Addr, Time, error) {
	var dl time.Time
	if deadline > 0 {
		dl = t.epoch.Add(deadline)
	}
	if err := t.conn.SetReadDeadline(dl); err != nil {
		return 0, Addr{}, t.Now(), err
	}
	n, ap, err := t.conn.ReadFromUDPAddrPort(buf)
	at := time.Since(t.epoch)
	if err != nil {
		switch {
		case errors.Is(err, os.ErrDeadlineExceeded):
			return 0, Addr{}, at, ErrDeadlineExceeded
		case t.isClosed():
			return 0, Addr{}, at, ErrClosed
		}
		return 0, Addr{}, at, err
	}
	a4 := ap.Addr().Unmap().As4()
	return n, Addr{IP: ipaddr.FromBytes4(a4), Port: ap.Port()}, at, nil
}

// SetHandler implements Transport: starts (or, with nil, stops) a pump
// goroutine that reads the socket and pushes packets to h. The packet slice
// passed to h is reused by the pump and only valid during the call.
//
// On return the old handler is detached: it will not be invoked again. The
// one exception is SetHandler called from inside the handler itself (e.g. a
// server detaching on its final packet) — then the in-progress call finishes
// and the pump exits right after, without SetHandler waiting on it, which
// would deadlock.
func (t *UDPTransport) SetHandler(h Handler) {
	self := goid()
	t.mu.Lock()
	t.pumpGen++
	gen := t.pumpGen
	wasPumping := t.pumping
	fromPump := wasPumping && t.pumpGID == self
	t.pumping = h != nil
	t.mu.Unlock()
	if wasPumping && !fromPump {
		t.pumpWG.Wait()
	}
	if h == nil {
		return
	}
	t.pumpWG.Add(1)
	go t.pump(gen, h)
}

// pump reads the socket in deadline slices until superseded or closed.
func (t *UDPTransport) pump(gen int, h Handler) {
	defer t.pumpWG.Done()
	t.mu.Lock()
	if t.pumpGen == gen {
		t.pumpGID = goid()
	}
	t.mu.Unlock()
	buf := make([]byte, udpRecvBufLen)
	for {
		t.mu.Lock()
		stale := t.closed || t.pumpGen != gen
		t.mu.Unlock()
		if stale {
			return
		}
		n, from, at, err := t.Recv(buf, t.Now()+udpPumpSlice)
		switch {
		case err == nil:
			h(at, from, buf[:n], 1)
		case errors.Is(err, ErrDeadlineExceeded):
			// Idle slice; re-check for detach/close.
		default:
			return
		}
	}
}

// Close implements Transport: closes the socket and stops the pump.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.pumpGen++
	t.mu.Unlock()
	err := t.conn.Close()
	t.pumpWG.Wait()
	return err
}

func (t *UDPTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// goid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [...]"). Used only on the cold SetHandler/pump-start
// path to tell whether SetHandler is re-entered from the pump's own handler
// call.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
