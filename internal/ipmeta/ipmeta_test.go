package ipmeta

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"timeouts/internal/ipaddr"
)

func mustDB(t *testing.T, ranges ...Range) *DB {
	t.Helper()
	var b Builder
	for _, r := range ranges {
		b.Add(r)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return db
}

func pfx(s string) ipaddr.Prefix24 { return ipaddr.MustParse(s).Prefix() }

func TestLookup(t *testing.T) {
	db := mustDB(t,
		Range{Start: pfx("1.0.0.0"), Blocks: 4, AS: AS{ASN: 100, Owner: "a", Type: Cellular, Continent: Asia}},
		Range{Start: pfx("1.0.10.0"), Blocks: 2, AS: AS{ASN: 200, Owner: "b", Type: Broadband, Continent: Europe}},
	)
	cases := []struct {
		addr string
		asn  uint32
		ok   bool
	}{
		{"1.0.0.1", 100, true},
		{"1.0.3.255", 100, true},
		{"1.0.4.0", 0, false},
		{"1.0.10.7", 200, true},
		{"1.0.11.7", 200, true},
		{"1.0.12.0", 0, false},
		{"0.255.255.255", 0, false},
	}
	for _, c := range cases {
		as, ok := db.Lookup(ipaddr.MustParse(c.addr))
		if ok != c.ok || (ok && as.ASN != c.asn) {
			t.Errorf("Lookup(%s) = %v, %v", c.addr, as.ASN, ok)
		}
	}
}

func TestBuilderRejectsOverlap(t *testing.T) {
	var b Builder
	b.Add(Range{Start: pfx("1.0.0.0"), Blocks: 4, AS: AS{ASN: 1}})
	b.Add(Range{Start: pfx("1.0.3.0"), Blocks: 4, AS: AS{ASN: 2}})
	if _, err := b.Build(); err == nil {
		t.Error("overlapping ranges accepted")
	}
}

func TestBuilderAcceptsAdjacent(t *testing.T) {
	var b Builder
	b.Add(Range{Start: pfx("1.0.4.0"), Blocks: 4, AS: AS{ASN: 2}})
	b.Add(Range{Start: pfx("1.0.0.0"), Blocks: 4, AS: AS{ASN: 1}})
	db, err := b.Build()
	if err != nil {
		t.Fatalf("adjacent ranges rejected: %v", err)
	}
	if db.NumBlocks() != 8 {
		t.Errorf("NumBlocks = %d", db.NumBlocks())
	}
}

func TestASes(t *testing.T) {
	db := mustDB(t,
		Range{Start: pfx("1.0.0.0"), Blocks: 1, AS: AS{ASN: 300}},
		Range{Start: pfx("1.0.1.0"), Blocks: 1, AS: AS{ASN: 100}},
		Range{Start: pfx("1.0.2.0"), Blocks: 1, AS: AS{ASN: 100}},
	)
	ases := db.ASes()
	if len(ases) != 2 || ases[0].ASN != 100 || ases[1].ASN != 300 {
		t.Errorf("ASes = %+v", ases)
	}
}

// Property: every address inside an added range resolves to its AS; the
// boundaries just outside do not.
func TestLookupBoundaryProperty(t *testing.T) {
	f := func(startRaw uint16, blocksRaw uint8) bool {
		start := ipaddr.Prefix24(0x010000) + ipaddr.Prefix24(startRaw)
		blocks := int(blocksRaw%16) + 1
		db := &DB{}
		var b Builder
		b.Add(Range{Start: start, Blocks: blocks, AS: AS{ASN: 42}})
		db, err := b.Build()
		if err != nil {
			return false
		}
		if _, ok := db.LookupPrefix(start - 1); ok {
			return false
		}
		if _, ok := db.LookupPrefix(start + ipaddr.Prefix24(blocks)); ok {
			return false
		}
		for i := 0; i < blocks; i++ {
			as, ok := db.LookupPrefix(start + ipaddr.Prefix24(i))
			if !ok || as.ASN != 42 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringNames(t *testing.T) {
	if SouthAmerica.String() != "South America" || Oceania.String() != "Oceania" {
		t.Error("continent names wrong")
	}
	if Cellular.String() != "cellular" || Backbone.String() != "backbone" {
		t.Error("access type names wrong")
	}
	if Continent(99).String() == "" || AccessType(99).String() == "" {
		t.Error("out-of-range labels must not be empty")
	}
}

func TestParseHelpers(t *testing.T) {
	for c := Continent(0); int(c) < NumContinents; c++ {
		got, err := ParseContinent(c.String())
		if err != nil || got != c {
			t.Errorf("ParseContinent(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseContinent("Atlantis"); err == nil {
		t.Error("bogus continent accepted")
	}
	for _, a := range []AccessType{Broadband, Cellular, Satellite, Datacenter, Backbone, Mixed} {
		got, err := ParseAccessType(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAccessType(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAccessType("carrier-pigeon"); err == nil {
		t.Error("bogus access type accepted")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	as := AS{ASN: 26599, Owner: "TELEFONICA BRASIL", Type: Cellular, Continent: SouthAmerica}
	b, err := json.Marshal(as)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"cellular"`) || !strings.Contains(string(b), `"South America"`) {
		t.Errorf("JSON not human-readable: %s", b)
	}
	var got AS
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != as {
		t.Errorf("roundtrip: %+v != %+v", got, as)
	}
}

func TestJSONRejectsUnknownNames(t *testing.T) {
	var c Continent
	if err := json.Unmarshal([]byte(`"Mars"`), &c); err == nil {
		t.Error("bogus continent unmarshaled")
	}
	var a AccessType
	if err := json.Unmarshal([]byte(`"quantum"`), &a); err == nil {
		t.Error("bogus access type unmarshaled")
	}
	if err := json.Unmarshal([]byte(`42`), &c); err == nil {
		t.Error("non-string continent unmarshaled")
	}
}
