// Package ipmeta maps IPv4 addresses to autonomous-system and geographic
// metadata. It plays the role MaxMind's GeoIP/ASN databases play in the
// paper (§6.2): attributing each responding address to an AS, an owner name,
// an access-network type, and a continent so that high-latency addresses can
// be ranked by network and geography (Tables 4–6, Figure 11).
//
// The database is a sorted list of non-overlapping /24-granularity prefix
// ranges; lookups are binary searches.
package ipmeta

import (
	"encoding/json"
	"fmt"
	"sort"

	"timeouts/internal/ipaddr"
)

// Continent identifies one of the six populated continents the paper's
// Table 5 aggregates over.
type Continent uint8

// Continents in Table 5 order.
const (
	SouthAmerica Continent = iota
	Asia
	Europe
	Africa
	NorthAmerica
	Oceania
	numContinents
)

// NumContinents is the number of distinct continents.
const NumContinents = int(numContinents)

var continentNames = [...]string{
	"South America", "Asia", "Europe", "Africa", "North America", "Oceania",
}

// String returns the display name used in the paper's tables.
func (c Continent) String() string {
	if int(c) < len(continentNames) {
		return continentNames[c]
	}
	return fmt.Sprintf("Continent(%d)", uint8(c))
}

// AccessType classifies how an AS connects its customers; the paper's key
// finding is that Cellular ASes dominate the high-latency population.
type AccessType uint8

// Access types.
const (
	Broadband AccessType = iota // DSL / cable / fiber eyeball networks
	Cellular
	Satellite
	Datacenter
	Backbone // national backbones such as Chinanet
	Mixed    // offers cellular alongside other services (e.g. AS9829)
)

var accessNames = [...]string{
	"broadband", "cellular", "satellite", "datacenter", "backbone", "mixed",
}

// String returns a short lowercase label.
func (t AccessType) String() string {
	if int(t) < len(accessNames) {
		return accessNames[t]
	}
	return fmt.Sprintf("AccessType(%d)", uint8(t))
}

// AS describes an autonomous system.
type AS struct {
	ASN       uint32
	Owner     string
	Type      AccessType
	Continent Continent
}

// Range assigns a contiguous run of /24 blocks to an AS.
type Range struct {
	Start  ipaddr.Prefix24 // first /24 in the range
	Blocks int             // number of consecutive /24s
	AS     AS
}

// End returns the first prefix after the range.
func (r Range) End() ipaddr.Prefix24 { return r.Start + ipaddr.Prefix24(r.Blocks) }

// DB is an immutable prefix-to-AS database. Build one with a Builder.
type DB struct {
	ranges []Range
}

// Builder accumulates ranges for a DB.
type Builder struct {
	ranges []Range
}

// Add appends a range. Ranges may be added in any order but must not
// overlap; Build verifies this.
func (b *Builder) Add(r Range) {
	b.ranges = append(b.ranges, r)
}

// Build sorts and validates the ranges.
func (b *Builder) Build() (*DB, error) {
	rs := make([]Range, len(b.ranges))
	copy(rs, b.ranges)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	for i := 1; i < len(rs); i++ {
		if rs[i].Start < rs[i-1].End() {
			return nil, fmt.Errorf("ipmeta: ranges %s+%d and %s+%d overlap",
				rs[i-1].Start, rs[i-1].Blocks, rs[i].Start, rs[i].Blocks)
		}
	}
	return &DB{ranges: rs}, nil
}

// Lookup returns the AS owning the address.
func (db *DB) Lookup(a ipaddr.Addr) (AS, bool) {
	return db.LookupPrefix(a.Prefix())
}

// LookupPrefix returns the AS owning the /24.
func (db *DB) LookupPrefix(p ipaddr.Prefix24) (AS, bool) {
	i := sort.Search(len(db.ranges), func(i int) bool { return db.ranges[i].End() > p })
	if i == len(db.ranges) || p < db.ranges[i].Start {
		return AS{}, false
	}
	return db.ranges[i].AS, true
}

// Ranges returns the sorted range list (shared slice; callers must not
// modify it).
func (db *DB) Ranges() []Range { return db.ranges }

// NumBlocks returns the total number of /24 blocks in the database.
func (db *DB) NumBlocks() int {
	n := 0
	for _, r := range db.ranges {
		n += r.Blocks
	}
	return n
}

// ASes returns the distinct ASes in the database, ordered by ASN.
func (db *DB) ASes() []AS {
	seen := make(map[uint32]AS)
	for _, r := range db.ranges {
		seen[r.AS.ASN] = r.AS
	}
	out := make([]AS, 0, len(seen))
	for _, as := range seen {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// ParseContinent inverts Continent.String.
func ParseContinent(s string) (Continent, error) {
	for i, n := range continentNames {
		if n == s {
			return Continent(i), nil
		}
	}
	return 0, fmt.Errorf("ipmeta: unknown continent %q", s)
}

// ParseAccessType inverts AccessType.String.
func ParseAccessType(s string) (AccessType, error) {
	for i, n := range accessNames {
		if n == s {
			return AccessType(i), nil
		}
	}
	return 0, fmt.Errorf("ipmeta: unknown access type %q", s)
}

// MarshalJSON encodes the continent as its display name.
func (c Continent) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON decodes a continent display name.
func (c *Continent) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseContinent(s)
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// MarshalJSON encodes the access type as its label.
func (t AccessType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON decodes an access-type label.
func (t *AccessType) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseAccessType(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}
