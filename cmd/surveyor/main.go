// Command surveyor runs an ISI-style survey against a synthetic population
// and writes the dataset in the binary record format, ready for cmd/analyze.
//
// Usage:
//
//	surveyor -o survey.tosv [-blocks 512] [-cycles 24] [-seed 42]
//	         [-vantage w|c|j|g] [-interval 11m] [-timeout 3s] [-parallel N]
//	         [-dense] [-fault-seed N] [-fault-corrupt F] [-fault-truncate F]
//	         [-fault-dup F] [-fault-data F]
//	         [-metrics FILE] [-trace FILE] [-manifest FILE] [-debug-addr ADDR]
//
// With -parallel N (N > 1) the survey runs on the sharded parallel engine:
// N contiguous shards of the block list are probed concurrently and the
// record streams are merged deterministically, so the dataset is
// byte-identical to the sequential run. -parallel 0 selects one shard per
// CPU.
//
// With -dense the prober tracks outstanding probes in a small ring of
// per-slot bitmaps instead of a per-address map, and the network model
// keeps its radio state in a bounded table — the configuration for
// internet-size -blocks values, with a dataset again byte-identical to the
// default path.
//
// The -fault-* flags drive the deterministic fault-injection layer: the
// wire rates corrupt, truncate or duplicate in-flight packets inside the
// simulation (the prober counts and skips undecodable packets), and
// -fault-data flips bits in the written dataset (per-byte probability), for
// exercising cmd/analyze -lenient. All faults are a pure function of
// -fault-seed, so a faulted run is exactly reproducible; with every rate at
// zero the output is byte-identical to a run without these flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"timeouts/internal/faults"
	"timeouts/internal/netmodel"
	"timeouts/internal/obs"
	"timeouts/internal/simnet"
	"timeouts/internal/survey"
)

func main() {
	var (
		out      = flag.String("o", "survey.tosv", "output dataset path")
		blocks   = flag.Int("blocks", 512, "population size in /24 blocks")
		cycles   = flag.Int("cycles", 24, "probing rounds (11 minutes each)")
		seed     = flag.Uint64("seed", 42, "population seed")
		vantage  = flag.String("vantage", "w", "vantage point: w, c, j or g")
		interval = flag.Duration("interval", 11*time.Minute, "probing interval")
		timeout  = flag.Duration("timeout", 3*time.Second, "matcher timeout")
		format   = flag.String("format", "tosv", "output format: tosv (fixed binary), compact (varint), or csv")
		catalog  = flag.String("catalog", "", "JSON AS-catalog file (default: built-in catalog)")
		parallel = flag.Int("parallel", 1, "shard count for the parallel engine (1 = sequential, 0 = one per CPU)")
		dense    = flag.Bool("dense", false, "flat rank-indexed prober and model state: bounded memory at large -blocks, byte-identical dataset")

		faultSeed     = flag.Uint64("fault-seed", 1, "fault-injection seed (faults are a pure function of it)")
		faultCorrupt  = flag.Float64("fault-corrupt", 0, "wire fault rate: bit-flip a delivered packet")
		faultTruncate = flag.Float64("fault-truncate", 0, "wire fault rate: truncate a delivered packet")
		faultDup      = flag.Float64("fault-dup", 0, "wire fault rate: duplicate a delivered packet")
		faultData     = flag.Float64("fault-data", 0, "dataset fault rate: per-byte bit-flip probability in the written file")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "surveyor:", err)
		os.Exit(1)
	}

	var vp survey.Vantage
	found := false
	for _, v := range survey.Vantages {
		if string(v.Name) == *vantage {
			vp, found = v, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "surveyor: unknown vantage %q\n", *vantage)
		os.Exit(2)
	}

	var specs []netmodel.ASSpec
	if *catalog != "" {
		cf, err := os.Open(*catalog)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs, err = netmodel.ReadCatalog(cf)
		cf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	pop := netmodel.New(netmodel.Config{Seed: *seed, Blocks: *blocks, Catalog: specs})

	var plan *faults.Plan
	if *faultCorrupt > 0 || *faultTruncate > 0 || *faultDup > 0 || *faultData > 0 {
		plan = &faults.Plan{
			Seed: *faultSeed,
			Wire: faults.WireConfig{
				CorruptRate:   *faultCorrupt,
				TruncateRate:  *faultTruncate,
				DuplicateRate: *faultDup,
			},
			Data: faults.DataConfig{FlipRate: *faultData},
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surveyor:", err)
		os.Exit(1)
	}
	sink0 := plan.CorruptWriter(f)
	hdr := survey.Header{Seed: *seed, Vantage: vp.Name}
	var (
		sink    survey.RecordWriter
		flush   func() error
		records func() uint64
	)
	switch *format {
	case "tosv":
		w := survey.NewWriter(sink0, hdr)
		sink, records = w, w.Count
	case "compact":
		w := survey.NewCompactWriter(sink0, hdr)
		sink, records = w, w.Count
	case "csv":
		w := survey.NewCSVWriter(sink0)
		sink, flush, records = w, w.Flush, w.Count
	default:
		fmt.Fprintf(os.Stderr, "surveyor: unknown format %q\n", *format)
		os.Exit(2)
	}
	start := time.Now()
	cfg := survey.Config{
		Vantage:  vp,
		Blocks:   pop.Blocks(),
		Interval: *interval,
		Cycles:   *cycles,
		Timeout:  *timeout,
		Seed:     *seed,
		Dense:    *dense,
		Faults:   plan,
		Obs:      cli.Reg,
		Trace:    cli.Tracer,
	}
	var st survey.Stats
	if *parallel > 1 {
		st, err = survey.RunSharded(cfg, *parallel, func(int) simnet.Fabric {
			model := netmodel.NewModel(pop)
			model.SetDense(*dense)
			model.AddVantage(vp.Addr, vp.Continent)
			return model
		}, sink)
	} else {
		model := netmodel.NewModel(pop)
		model.SetDense(*dense)
		model.AddVantage(vp.Addr, vp.Continent)
		net := simnet.NewNetwork(&simnet.Scheduler{}, model)
		st, err = survey.Run(net, cfg, sink)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "surveyor:", err)
		os.Exit(1)
	}
	if flush != nil {
		if err := flush(); err != nil {
			fmt.Fprintln(os.Stderr, "surveyor:", err)
			os.Exit(1)
		}
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "surveyor:", err)
		os.Exit(1)
	}
	var fs *obs.FaultSummary
	if plan != nil {
		fs = &obs.FaultSummary{
			Seed:          plan.Seed,
			WireCorrupt:   plan.Wire.CorruptRate,
			WireTruncate:  plan.Wire.TruncateRate,
			WireDuplicate: plan.Wire.DuplicateRate,
			DataFlip:      plan.Data.FlipRate,
		}
	}
	if err := cli.Finish("surveyor", *seed, *parallel, fs); err != nil {
		fmt.Fprintln(os.Stderr, "surveyor:", err)
		os.Exit(1)
	}
	fmt.Printf("surveyed %d blocks x %d cycles from %c in %v\n",
		*blocks, *cycles, vp.Name, time.Since(start).Round(time.Millisecond))
	fmt.Printf("probes=%d matched=%d (%.1f%%) timeouts=%d unmatched=%d errors=%d\n",
		st.Probes, st.Matched, 100*st.ResponseRate(), st.Timeouts, st.Unmatched, st.Errors)
	if plan != nil {
		fmt.Printf("faults: seed=%d corrupt packets skipped=%d\n", plan.Seed, st.CorruptPackets)
	}
	fmt.Printf("dataset: %s (%d records, %s format)\n", *out, records(), *format)
}
