// Command analyze runs the paper's analysis pipeline over a survey dataset
// written by cmd/surveyor: delayed-response matching, broadcast and
// duplicate filtering, and the minimum-timeout matrix (Table 2).
//
// Usage:
//
//	analyze survey.tosv [-cycles N] [-naive] [-stream]
//
// With -stream the full pipeline runs in bounded memory: records stream out
// of the dataset reader straight into a core.StreamMatcher, which keeps only
// per-address open state, so memory is O(addresses) rather than O(records).
// At simulation scale (per-address streams within the exact-quantile buffer)
// the streaming report is byte-identical to the in-memory one; beyond that
// the per-address quantiles are P² estimates.
package main

import (
	"flag"
	"fmt"
	"os"

	"timeouts/internal/core"
	"timeouts/internal/survey"
)

func main() {
	var (
		cycles = flag.Int("cycles", 0, "survey rounds (tunes the broadcast filter threshold; 0 = paper defaults)")
		naive  = flag.Bool("naive", false, "skip filtering (the paper's 'naive matching')")
		stream = flag.Bool("stream", false, "bounded-memory streaming pipeline (O(addresses) memory)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) > 1 {
		// Accept flags after the dataset path too: analyze survey.tosv -cycles 24.
		flag.CommandLine.Parse(args[1:])
		args = append([]string{args[0]}, flag.CommandLine.Args()...)
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: analyze [flags] survey.tosv [flags]")
		os.Exit(2)
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	defer f.Close()

	src, hdr, err := survey.OpenSource(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}

	opt := core.Options{}
	if *cycles > 0 {
		opt = core.MatchOptionsForCycles(*cycles)
	}

	var (
		analysis core.Analysis
		records  uint64
	)
	if *stream {
		m := core.NewStreamMatcher(opt)
		if err := m.Consume(src); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		records = m.Records()
		analysis = m.Finalize()
	} else {
		recs, err := survey.DrainSource(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		records = uint64(len(recs))
		analysis = core.Match(recs, opt)
	}

	fmt.Printf("dataset: %d records, vantage %c, seed %d\n", records, hdr.Vantage, hdr.Seed)
	fmt.Print(core.RenderReport(analysis, *naive))
}
