// Command analyze runs the paper's analysis pipeline over a survey dataset
// written by cmd/surveyor: delayed-response matching, broadcast and
// duplicate filtering, and the minimum-timeout matrix (Table 2).
//
// Usage:
//
//	analyze survey.tosv [-cycles N] [-naive]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"timeouts/internal/core"
	"timeouts/internal/survey"
)

// readAnyFormat sniffs the dataset format (fixed binary, compact, or CSV)
// and loads the records.
func readAnyFormat(f io.Reader) ([]survey.Record, survey.Header, error) {
	br := bufio.NewReaderSize(f, 1<<16)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, survey.Header{}, fmt.Errorf("reading dataset: %w", err)
	}
	switch string(magic) {
	case "TOSV":
		r, err := survey.NewReader(br)
		if err != nil {
			return nil, survey.Header{}, err
		}
		recs, err := r.ReadAll()
		return recs, r.Header(), err
	case "TOSC":
		r, err := survey.NewCompactReader(br)
		if err != nil {
			return nil, survey.Header{}, err
		}
		recs, err := r.ReadAll()
		return recs, r.Header(), err
	case "type":
		recs, err := survey.ReadCSV(br)
		return recs, survey.Header{Vantage: '?'}, err
	default:
		return nil, survey.Header{}, survey.ErrBadFormat
	}
}

func main() {
	var (
		cycles = flag.Int("cycles", 0, "survey rounds (tunes the broadcast filter threshold; 0 = paper defaults)")
		naive  = flag.Bool("naive", false, "skip filtering (the paper's 'naive matching')")
		stream = flag.Bool("stream", false, "bounded-memory streaming aggregation (survey-detected view only)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: analyze [flags] survey.tosv")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	defer f.Close()
	recs, hdr, err := readAnyFormat(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	fmt.Printf("dataset: %d records, vantage %c, seed %d\n", len(recs), hdr.Vantage, hdr.Seed)

	if *stream {
		q, err := core.StreamAggregate(core.NewSliceSource(recs))
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		matrix := core.TimeoutMatrix(q)
		fmt.Printf("\nTable 2 (streaming, survey-detected only, %d addresses):\n%s",
			len(q), matrix.FormatSeconds())
		return
	}

	opt := core.Options{}
	if *cycles > 0 {
		opt = core.MatchOptionsForCycles(*cycles)
	}
	res := core.Match(recs, opt)

	t1 := res.BuildTable1()
	fmt.Printf("\nTable 1 — matching and filtering:\n%s", t1.Format())

	samples := res.Samples(!*naive)
	q := core.PerAddressQuantiles(samples)
	matrix := core.TimeoutMatrix(q)
	mode := "filtered"
	if *naive {
		mode = "naive"
	}
	fmt.Printf("\nTable 2 — minimum timeout matrix (%s, %d addresses):\n%s",
		mode, len(q), matrix.FormatSeconds())

	fmt.Printf("\nheadline: %.1f%% of addresses see >5%% of pings exceed 5s; 98/98 needs %s; 99/99 needs %s\n",
		100*core.FracAddrsAbove(q, 95, 5*time.Second),
		matrix.At(98, 98).Round(time.Second), matrix.At(99, 99).Round(time.Second))

	if !*naive {
		bc := res.BroadcastResponders()
		dup := res.DuplicateResponders()
		fmt.Printf("filtered: %d broadcast responders, %d duplicate responders\n", len(bc), len(dup))
	}
}
