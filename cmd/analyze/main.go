// Command analyze runs the paper's analysis pipeline over a survey dataset
// written by cmd/surveyor: delayed-response matching, broadcast and
// duplicate filtering, and the minimum-timeout matrix (Table 2).
//
// Usage:
//
//	analyze survey.tosv [-cycles N] [-naive] [-stream] [-lenient] [-max-skip F]
//	        [-metrics FILE] [-trace FILE] [-manifest FILE] [-debug-addr ADDR]
//
// With -stream the full pipeline runs in bounded memory: records stream out
// of the dataset reader straight into a core.StreamMatcher, which keeps only
// per-address open state, so memory is O(addresses) rather than O(records).
// At simulation scale (per-address streams within the exact-quantile buffer)
// the streaming report is byte-identical to the in-memory one; beyond that
// the per-address quantiles are P² estimates.
//
// With -lenient, corrupt records are skipped and counted per cause instead
// of aborting the run: CSV resynchronizes at the next row, the fixed binary
// format at the next record stride, and the compact format (whose varint
// encoding cannot be resynced) keeps everything read before the first bad
// record. The per-cause skip counts are reported on stderr. -max-skip sets
// the error budget: if the skipped fraction of the dataset exceeds it, the
// run fails (exit 1) after printing the report, so batch pipelines notice
// datasets too damaged to trust. The per-cause counts are printed on every
// exit path — budget exceeded or read failure included — so a failing run
// still reports what it managed to read. Without -lenient the first corrupt
// record is fatal.
//
// The observability flags sample the streaming matcher (-stream): open-state
// high-water marks, quantile-sketch spills, and the matched/recovered
// latency histograms whose tail fractions mirror the report's.
package main

import (
	"flag"
	"fmt"
	"os"

	"timeouts/internal/core"
	"timeouts/internal/obs"
	"timeouts/internal/survey"
)

func main() {
	var (
		cycles  = flag.Int("cycles", 0, "survey rounds (tunes the broadcast filter threshold; 0 = paper defaults)")
		naive   = flag.Bool("naive", false, "skip filtering (the paper's 'naive matching')")
		stream  = flag.Bool("stream", false, "bounded-memory streaming pipeline (O(addresses) memory)")
		lenient = flag.Bool("lenient", false, "skip corrupt records (counted per cause) instead of failing fast")
		maxSkip = flag.Float64("max-skip", 0.05, "with -lenient: fail if more than this fraction of records is skipped")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	args := flag.Args()
	if len(args) > 1 {
		// Accept flags after the dataset path too: analyze survey.tosv -cycles 24.
		flag.CommandLine.Parse(args[1:])
		args = append([]string{args[0]}, flag.CommandLine.Args()...)
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: analyze [flags] survey.tosv [flags]")
		os.Exit(2)
	}
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	defer f.Close()

	var (
		src  survey.RecordSource
		stat survey.StatSource
		hdr  survey.Header
	)
	if *lenient {
		stat, hdr, err = survey.OpenSourceLenient(f)
		src = stat
	} else {
		src, hdr, err = survey.OpenSource(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}

	opt := core.Options{}
	if *cycles > 0 {
		opt = core.MatchOptionsForCycles(*cycles)
	}

	// Print the lenient read accounting on every exit path — a run that
	// fails its error budget (or dies mid-read) still reports what it
	// managed to read and why the rest was skipped.
	printReadStats := func() {
		if stat != nil {
			fmt.Fprintln(os.Stderr, "analyze: lenient read:", stat.Stats())
		}
	}

	var (
		analysis core.Analysis
		records  uint64
	)
	if *stream {
		m := core.NewStreamMatcher(opt)
		m.SetObserver(cli.Reg)
		if err := m.Consume(src); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			printReadStats()
			os.Exit(1)
		}
		records = m.Records()
		analysis = m.Finalize()
	} else {
		recs, err := survey.DrainSource(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			printReadStats()
			os.Exit(1)
		}
		records = uint64(len(recs))
		analysis = core.Match(recs, opt)
	}

	fmt.Printf("dataset: %d records, vantage %c, seed %d\n", records, hdr.Vantage, hdr.Seed)
	fmt.Print(core.RenderReport(analysis, *naive))

	if err := cli.Finish("analyze", hdr.Seed, 1, nil); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}

	if stat != nil {
		rs := stat.Stats()
		printReadStats()
		total := rs.Records + rs.Skipped()
		if total > 0 {
			if frac := float64(rs.Skipped()) / float64(total); frac > *maxSkip {
				fmt.Fprintf(os.Stderr, "analyze: skipped fraction %.4f exceeds error budget %.4f\n", frac, *maxSkip)
				os.Exit(1)
			}
		}
	}
}
