// Command zmapscan runs a Zmap-style stateless scan of a synthetic
// population and prints the RTT distribution and broadcast-responder
// findings — the workload behind the paper's Figures 2 and 7 and Tables
// 3-6.
//
// Usage:
//
//	zmapscan [-blocks 512] [-seed 42] [-scanseed 1] [-duration 90m] [-top 10]
//	         [-parallel N] [-dense] [-fault-seed N] [-fault-corrupt F]
//	         [-fault-truncate F] [-fault-dup F]
//	         [-metrics FILE] [-trace FILE] [-manifest FILE] [-debug-addr ADDR]
//
// With -parallel N (N > 1) the scan runs on the sharded parallel engine: N
// contiguous shards of the probe permutation execute concurrently and the
// response streams are merged deterministically, so the output is
// byte-identical to the sequential scan. -parallel 0 selects one shard per
// CPU.
//
// With -dense the scanner and the network model switch to flat
// rank-indexed state (a self-rescheduling probe pump, bitset dedup, a
// bounded radio-state table) instead of per-address maps — the
// configuration for internet-size -blocks values, with output again
// byte-identical to the default path.
//
// The -fault-* flags drive the deterministic fault-injection layer: matching
// rates of in-flight packets are bit-flipped, truncated or duplicated inside
// the simulation, and the scanner counts-and-skips whatever no longer
// decodes. Faults are a pure function of -fault-seed; with every rate at
// zero the scan is byte-identical to one without these flags.
//
// The observability flags are opt-in and deterministic: for a fixed seed the
// -metrics snapshot and the manifest's run section are byte-identical
// whatever -parallel is (make obs-check enforces this).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"timeouts/internal/core"
	"timeouts/internal/faults"
	"timeouts/internal/ipaddr"
	"timeouts/internal/ipmeta"
	"timeouts/internal/netmodel"
	"timeouts/internal/obs"
	"timeouts/internal/simnet"
	"timeouts/internal/stats"
	"timeouts/internal/zmapper"
)

func main() {
	var (
		blocks   = flag.Int("blocks", 512, "population size in /24 blocks")
		seed     = flag.Uint64("seed", 42, "population seed")
		scanseed = flag.Uint64("scanseed", 1, "scan-order seed")
		duration = flag.Duration("duration", 90*time.Minute, "scan duration (simulated)")
		top      = flag.Int("top", 10, "AS ranking size")
		catalog  = flag.String("catalog", "", "JSON AS-catalog file (default: built-in catalog)")
		parallel = flag.Int("parallel", 1, "shard count for the parallel engine (1 = sequential, 0 = one per CPU)")
		dense    = flag.Bool("dense", false, "flat rank-indexed scanner and model state: bounded memory at large -blocks, byte-identical output")

		faultSeed     = flag.Uint64("fault-seed", 1, "fault-injection seed (faults are a pure function of it)")
		faultCorrupt  = flag.Float64("fault-corrupt", 0, "wire fault rate: bit-flip a delivered packet")
		faultTruncate = flag.Float64("fault-truncate", 0, "wire fault rate: truncate a delivered packet")
		faultDup      = flag.Float64("fault-dup", 0, "wire fault rate: duplicate a delivered packet")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "zmapscan:", err)
		os.Exit(1)
	}

	var specs []netmodel.ASSpec
	if *catalog != "" {
		cf, err := os.Open(*catalog)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs, err = netmodel.ReadCatalog(cf)
		cf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	pop := netmodel.New(netmodel.Config{Seed: *seed, Blocks: *blocks, Catalog: specs})
	var plan *faults.Plan
	if *faultCorrupt > 0 || *faultTruncate > 0 || *faultDup > 0 {
		plan = &faults.Plan{
			Seed: *faultSeed,
			Wire: faults.WireConfig{
				CorruptRate:   *faultCorrupt,
				TruncateRate:  *faultTruncate,
				DuplicateRate: *faultDup,
			},
		}
	}
	src := ipaddr.MustParse("240.0.2.1")
	cfg := zmapper.Config{
		Src: src, Continent: ipmeta.NorthAmerica,
		TargetN: pop.NumAddrs(), TargetAt: pop.AddrAt,
		Duration: *duration, Seed: *scanseed,
		Faults: plan,
		Obs:    cli.Reg, Trace: cli.Tracer,
	}
	if *dense {
		cfg.Dense, cfg.TargetIndex = true, pop.IndexOf
	}

	start := time.Now()
	var sc *zmapper.Scan
	var err error
	if *parallel > 1 {
		sc, err = zmapper.RunSharded(cfg, *parallel, func(int) simnet.Fabric {
			model := netmodel.NewModel(pop)
			model.SetDense(*dense)
			model.AddVantage(src, ipmeta.NorthAmerica)
			return model
		})
	} else {
		model := netmodel.NewModel(pop)
		model.SetDense(*dense)
		model.AddVantage(src, ipmeta.NorthAmerica)
		net := simnet.NewNetwork(&simnet.Scheduler{}, model)
		sc, err = zmapper.Run(net, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zmapscan:", err)
		os.Exit(1)
	}
	var fs *obs.FaultSummary
	if plan != nil {
		fs = &obs.FaultSummary{
			Seed:          plan.Seed,
			WireCorrupt:   plan.Wire.CorruptRate,
			WireTruncate:  plan.Wire.TruncateRate,
			WireDuplicate: plan.Wire.DuplicateRate,
		}
	}
	if err := cli.Finish("zmapscan", *seed, *parallel, fs); err != nil {
		fmt.Fprintln(os.Stderr, "zmapscan:", err)
		os.Exit(1)
	}
	rtts := sc.RTTPercentiles()
	fmt.Printf("scanned %d addresses in %v (wall), %d responders\n",
		sc.ProbesSent, time.Since(start).Round(time.Millisecond), len(rtts))
	if plan != nil {
		fmt.Printf("faults: seed=%d corrupt packets skipped=%d\n", plan.Seed, sc.CorruptPackets)
	}
	if len(rtts) == 0 {
		return
	}
	fmt.Printf("RTT: median %v  p95 %v  p99 %v  p99.9 %v\n",
		stats.Percentile(rtts, 50).Round(time.Millisecond),
		stats.Percentile(rtts, 95).Round(time.Millisecond),
		stats.Percentile(rtts, 99).Round(time.Millisecond),
		stats.Percentile(rtts, 99.9).Round(10*time.Millisecond))
	fmt.Printf("addresses >1s: %.2f%%   >100s: %.3f%%\n",
		100*stats.FracAbove(rtts, time.Second),
		100*stats.FracAbove(rtts, 100*time.Second))

	b := sc.Broadcast()
	fmt.Printf("broadcast responders: %d (triggered at octets 255:%d 0:%d 127:%d 128:%d)\n",
		len(b.Responders), b.ProbedBroadcast[255], b.ProbedBroadcast[0],
		b.ProbedBroadcast[127], b.ProbedBroadcast[128])

	scans := []map[ipaddr.Addr]time.Duration{sc.SelfResponses()}
	fmt.Printf("\nASes with the most addresses >1s (turtles):\n%s",
		core.FormatASRanks(core.RankASes(scans, pop.DB(), core.TurtleThreshold, *top)))
	fmt.Printf("\nContinents:\n%s",
		core.FormatContinentRanks(core.RankContinents(scans, pop.DB(), core.TurtleThreshold)))
}
