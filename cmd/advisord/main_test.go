package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"timeouts/internal/ipaddr"
	"timeouts/internal/survey"
)

// buildAdvisord compiles the binary once per test run into a shared temp dir.
func buildAdvisord(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "advisord")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeDataset writes a small survey CSV: n matched probes spread over 16
// prefixes plus one timeout, the same shape the surveyor emits.
func writeDataset(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "survey.tosv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := survey.NewCSVWriter(f)
	for i := 0; i < n; i++ {
		if err := w.Write(survey.Record{
			Type: survey.RecMatched,
			Addr: ipaddr.Addr(0x0a000001 + uint32(i%16)<<8),
			When: time.Duration(i+1) * time.Second,
			RTT:  time.Duration(10+i%200) * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Write(survey.Record{Type: survey.RecTimeout, Addr: 0x0a000001, When: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

type advisordProc struct {
	cmd  *exec.Cmd
	addr string
	out  *bufio.Scanner
	done chan error
}

// startAdvisord launches the binary and blocks until it prints its listen
// address — the point at which /healthz is answering.
func startAdvisord(t *testing.T, bin string, args ...string) *advisordProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &advisordProc{cmd: cmd, out: bufio.NewScanner(stdout), done: make(chan error, 1)}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	for p.out.Scan() {
		line := p.out.Text()
		if rest, ok := strings.CutPrefix(line, "serving on "); ok {
			p.addr = rest
			return p
		}
	}
	t.Fatalf("advisord exited before printing its address: %v", p.out.Err())
	return nil
}

// drainOutput consumes remaining stdout lines (returning them) and waits for
// exit, so SIGTERM can't block on a full pipe.
func (p *advisordProc) wait(t *testing.T) ([]string, error) {
	t.Helper()
	var lines []string
	for p.out.Scan() {
		lines = append(lines, p.out.Text())
	}
	return lines, p.cmd.Wait()
}

func (p *advisordProc) get(t *testing.T, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + p.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestAdvisordEndToEnd drives the real binary through its lifecycle: ingest a
// CSV, serve advice, drain on SIGTERM with a final checkpoint, then restart
// from the checkpoint alone and keep serving the same epoch.
func TestAdvisordEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildAdvisord(t)
	dataset := writeDataset(t, 160)
	ckptDir := filepath.Join(t.TempDir(), "ckpt")

	p := startAdvisord(t, bin, "-i", dataset, "-checkpoint-dir", ckptDir)

	// Ingest of 160 records is near-instant but asynchronous to the address
	// line; poll /healthz until the gate opens.
	var health string
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := p.get(t, "/healthz")
		if code != http.StatusOK {
			t.Fatalf("/healthz: %d %s", code, body)
		}
		health = body
		if strings.Contains(body, `"state":"serving"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached serving state; last health: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(health, `"ok":true`) {
		t.Errorf("serving health not ok: %s", health)
	}

	code, body := p.get(t, "/timeout?addr=10.0.1.1")
	if code != http.StatusOK || !strings.Contains(body, `"source":"prefix"`) {
		t.Fatalf("/timeout = %d %s, want prefix advice", code, body)
	}

	// SIGTERM: graceful drain, final checkpoint, exit 0.
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	lines, err := p.wait(t)
	if err != nil {
		t.Fatalf("exit after SIGTERM: %v (output: %q)", err, lines)
	}
	if len(lines) == 0 || !strings.Contains(strings.Join(lines, "\n"), "final checkpoint written") {
		t.Errorf("drain output missing checkpoint confirmation: %q", lines)
	}
	gens, err := filepath.Glob(filepath.Join(ckptDir, "ckpt-*.tadv"))
	if err != nil || len(gens) == 0 {
		t.Fatalf("no checkpoint generations in %s (%v)", ckptDir, err)
	}

	// Restart from the checkpoint alone: no -i, no -sim. It must recover,
	// open the gate immediately, and serve the same advice epoch.
	p2 := startAdvisord(t, bin, "-checkpoint-dir", ckptDir)
	code, body = p2.get(t, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"state":"serving"`) {
		t.Fatalf("recovered /healthz = %d %s, want serving", code, body)
	}
	code, body = p2.get(t, "/timeout?addr=10.0.1.1")
	if code != http.StatusOK || !strings.Contains(body, `"source":"prefix"`) {
		t.Fatalf("recovered /timeout = %d %s, want prefix advice", code, body)
	}
	resp, err := http.Get("http://" + p2.addr + "/timeout?addr=10.0.1.1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e := resp.Header.Get("X-Advisor-Epoch"); e == "" || e == "0" {
		t.Errorf("recovered X-Advisor-Epoch = %q, want the checkpointed epoch", e)
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.wait(t); err != nil {
		t.Fatalf("recovered instance exit after SIGTERM: %v", err)
	}
}

// TestAdvisordMetricsAndAccessLog drives the telemetry plane on the real
// binary: /metrics serves Prometheus text (serve histograms, live ingest
// series, runtime collectors, watchdog quantiles after a tick) and the
// sampled access log lands as parseable JSONL.
func TestAdvisordMetricsAndAccessLog(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildAdvisord(t)
	dataset := writeDataset(t, 160)
	logPath := filepath.Join(t.TempDir(), "access.jsonl")
	p := startAdvisord(t, bin, "-i", dataset,
		"-access-log", logPath, "-log-sample", "1",
		"-self-slo", "1ns", "-watchdog-interval", "50ms")

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, body := p.get(t, "/healthz"); strings.Contains(body, `"state":"serving"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reached serving state")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		p.get(t, "/timeout?addr=10.0.1.1")
	}

	resp, err := http.Get("http://" + p.addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"advisor_http_latency_timeout_2xx_seconds_bucket",
		"advisor_http_latency_timeout_2xx_seconds_count",
		"advisor_ingest_live_records 161",
		"advisor_current_epoch",
		"advisor_snapshot_age_seconds",
		"go_goroutines",
		"go_gc_pause_seconds_bucket",
		`advisor_queries{class="diagnostic"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The watchdog samples every 50ms against a 1ns SLO: its quantiles and a
	// breach count must appear within a few ticks.
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, body := p.get(t, "/metrics")
		if strings.Contains(body, "advisor_self_p99_seconds") &&
			strings.Contains(body, "advisor_self_timeout_breach") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog series never appeared; last scrape:\n%s", body)
		}
		time.Sleep(25 * time.Millisecond)
	}

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if _, err := p.wait(t); err != nil {
		t.Fatalf("exit after SIGTERM: %v", err)
	}
	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("access log: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(logData)), "\n")
	if len(lines) < 20 {
		t.Fatalf("access log has %d lines, want >= 20", len(lines))
	}
	for _, line := range lines[:3] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable access log line %q: %v", line, err)
		}
		for _, k := range []string{"id", "route", "status", "outcome", "duration_ms"} {
			if _, ok := rec[k]; !ok {
				t.Errorf("access log line missing %q: %s", k, line)
			}
		}
	}
}

// TestAdvisordRequiresInput pins the operator error: no dataset, no sim, no
// recoverable checkpoint directory must exit 2 before binding the listener.
func TestAdvisordRequiresInput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildAdvisord(t)
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-checkpoint-dir", filepath.Join(t.TempDir(), "empty"))
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("exit = %v (output %q), want exit code 2", err, out)
	}
	if !strings.Contains(string(out), "need -i DATASET") {
		t.Errorf("usage hint missing: %q", out)
	}
}

// TestAdvisordSimServesAndDrains covers the -sim boot path end to end with a
// tiny population: advice must come from the in-process survey and SIGTERM
// must still exit 0 even with no checkpoint directory configured.
func TestAdvisordSimServesAndDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildAdvisord(t)
	p := startAdvisord(t, bin, "-sim", "-blocks", "64", "-cycles", "2")

	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := p.get(t, "/healthz")
		if strings.Contains(body, `"state":"serving"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sim never reached serving; last health: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, body := p.get(t, "/snapshot"); code != http.StatusOK || !strings.Contains(body, "prefixes") {
		t.Fatalf("/snapshot = %d %s", code, body)
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	lines, err := p.wait(t)
	if err != nil {
		t.Fatalf("exit after SIGTERM: %v (output %q)", err, lines)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "drained") {
		t.Errorf("missing drain confirmation: %q", lines)
	}
}
