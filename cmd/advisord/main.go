// Command advisord is the long-running timeout-advice service: it ingests a
// survey dataset (or generates one in-process with the sim engine), builds
// per-/24 latency sketches, and serves timeout recommendations over
// HTTP/JSON:
//
//	GET /timeout?addr=X[&capture=p][&coverage=r]  one recommendation
//	GET /healthz                                  liveness + current epoch
//	GET /snapshot                                 full advice dump
//
// Usage:
//
//	advisord -i survey.tosv [-listen :8080]
//	advisord -sim [-blocks 512] [-cycles 24] [-seed 42] [-vantage w]
//	         [-parallel N] [-listen :8080]
//	         [-metrics FILE] [-trace FILE] [-manifest FILE] [-debug-addr ADDR]
//
// With -i, the dataset is streamed through the advisor's bounded ingest
// (delayed responses recovered by the StreamMatcher attribution rule) —
// memory stays proportional to the number of /24 prefixes, not records.
// With -sim, the same survey the surveyor would write to disk is probed
// straight into the store; -parallel N uses the sharded engine, whose
// published advice is byte-identical to the sequential run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"timeouts/internal/advisor"
	"timeouts/internal/netmodel"
	"timeouts/internal/obs"
	"timeouts/internal/simnet"
	"timeouts/internal/survey"
)

func main() {
	var (
		in       = flag.String("i", "", "survey dataset to ingest (any format cmd/analyze reads)")
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		sim      = flag.Bool("sim", false, "generate the ingest in-process with the sim engine")
		blocks   = flag.Int("blocks", 512, "-sim: population size in /24 blocks")
		cycles   = flag.Int("cycles", 24, "-sim: probing rounds")
		seed     = flag.Uint64("seed", 42, "-sim: population seed")
		vantage  = flag.String("vantage", "w", "-sim: vantage point: w, c, j or g")
		parallel = flag.Int("parallel", 1, "-sim: shard count (1 = sequential, 0 = one per CPU)")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if err := cli.Init(); err != nil {
		fail(err)
	}

	st := advisor.NewStore()
	st.SetObserver(cli.Reg)
	start := time.Now()
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		src, hdr, err := survey.OpenSource(f)
		if err != nil {
			fail(err)
		}
		n, err := advisor.IngestSource(st, src)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("ingested %d records (vantage %c) from %s in %v\n",
			n, hdr.Vantage, *in, time.Since(start).Round(time.Millisecond))
	case *sim:
		var vp survey.Vantage
		found := false
		for _, v := range survey.Vantages {
			if string(v.Name) == *vantage {
				vp, found = v, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "advisord: unknown vantage %q\n", *vantage)
			os.Exit(2)
		}
		pop := netmodel.New(netmodel.Config{Seed: *seed, Blocks: *blocks})
		cfg := survey.Config{
			Vantage: vp,
			Blocks:  pop.Blocks(),
			Cycles:  *cycles,
			Seed:    *seed,
			Obs:     cli.Reg,
			Trace:   cli.Tracer,
		}
		fabric := func(int) simnet.Fabric {
			model := netmodel.NewModel(pop)
			model.AddVantage(vp.Addr, vp.Continent)
			return model
		}
		var err error
		if *parallel > 1 {
			_, err = survey.RunSharded(cfg, *parallel, fabric, st)
		} else {
			_, err = survey.Run(simnet.NewNetwork(&simnet.Scheduler{}, fabric(0)), cfg, st)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("surveyed %d blocks x %d cycles from %c in %v\n",
			*blocks, *cycles, vp.Name, time.Since(start).Round(time.Millisecond))
	default:
		fmt.Fprintln(os.Stderr, "advisord: need -i DATASET or -sim (see -h)")
		os.Exit(2)
	}

	adv := advisor.New()
	adv.SetObserver(cli.Reg)
	snap := adv.Publish(st)
	fmt.Printf("advice: %d prefixes, %d samples, epoch %d\n",
		snap.Prefixes(), snap.Samples(), snap.Epoch())

	if err := cli.Finish("advisord", *seed, *parallel, nil); err != nil {
		fail(err)
	}

	fmt.Printf("serving on %s\n", *listen)
	if err := http.ListenAndServe(*listen, advisor.NewHandler(adv)); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "advisord:", err)
	os.Exit(1)
}
