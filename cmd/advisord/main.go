// Command advisord is the long-running timeout-advice service: it ingests a
// survey dataset (or generates one in-process with the sim engine), builds
// per-/24 latency sketches, and serves timeout recommendations over
// HTTP/JSON:
//
//	GET /timeout?addr=X[&capture=p][&coverage=r]  one recommendation
//	GET /healthz                                  state + epoch + snapshot age
//	GET /snapshot                                 full advice dump
//
// Usage:
//
//	advisord -i survey.tosv [-listen :8080]
//	advisord -sim [-blocks 512] [-cycles 24] [-seed 42] [-vantage w]
//	         [-parallel N] [-listen :8080]
//	advisord -checkpoint-dir DIR   # recover and serve, no ingest needed
//	         [-checkpoint-keep N] [-checkpoint-every RECORDS]
//	         [-checkpoint-interval D] [-stale-after D]
//	         [-max-inflight N] [-retry-after D] [-request-timeout D]
//	         [-drain-timeout D] [-max-skip N]
//	         [-metrics FILE] [-trace FILE] [-manifest FILE] [-debug-addr ADDR]
//
// With -i, the dataset is streamed through the advisor's resilient ingest
// loop (delayed responses recovered by the StreamMatcher attribution rule,
// corrupt records counted and skipped) — memory stays proportional to the
// number of /24 prefixes, not records. With -sim, the same survey the
// surveyor would write to disk is probed straight into the store; -parallel N
// uses the sharded engine, whose published advice is byte-identical to the
// sequential run.
//
// With -checkpoint-dir, the store is checkpointed durably (temp file +
// atomic rename, newest -checkpoint-keep generations retained) and recovered
// on startup from the newest valid generation; a recovered advisord serves
// the checkpointed advice immediately, before — or entirely without — fresh
// ingest. The listener binds and /healthz answers from the start (reporting
// "recovering" until advice is published); advice routes shed load beyond
// -max-inflight with 503 + Retry-After; SIGTERM/SIGINT drains gracefully:
// stop accepting, finish in-flight requests, write a final checkpoint,
// exit 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"timeouts/internal/advisor"
	"timeouts/internal/netmodel"
	"timeouts/internal/obs"
	"timeouts/internal/simnet"
	"timeouts/internal/survey"
)

func main() {
	var (
		in       = flag.String("i", "", "survey dataset to ingest (any format cmd/analyze reads)")
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		sim      = flag.Bool("sim", false, "generate the ingest in-process with the sim engine")
		blocks   = flag.Int("blocks", 512, "-sim: population size in /24 blocks")
		cycles   = flag.Int("cycles", 24, "-sim: probing rounds")
		seed     = flag.Uint64("seed", 42, "-sim: population seed")
		vantage  = flag.String("vantage", "w", "-sim: vantage point: w, c, j or g")
		parallel = flag.Int("parallel", 1, "-sim: shard count (1 = sequential, 0 = one per CPU)")

		ckptDir      = flag.String("checkpoint-dir", "", "durable checkpoint directory (recovery source and save target)")
		ckptKeep     = flag.Int("checkpoint-keep", 3, "checkpoint generations to retain")
		ckptEvery    = flag.Uint64("checkpoint-every", 1<<20, "checkpoint every N ingested records (0 = only on completion and drain)")
		ckptInterval = flag.Duration("checkpoint-interval", 5*time.Minute, "periodic checkpoint interval while serving (0 disables)")
		staleAfter   = flag.Duration("stale-after", 0, "per-prefix staleness TTL: older prefixes degrade to the population fallback (0 disables)")
		maxInflight  = flag.Int("max-inflight", 256, "max concurrent advice requests before shedding with 503")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint sent with shed responses")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Second, "per-request handling deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
		maxSkip      = flag.Uint64("max-skip", 0, "corrupt-record budget for -i ingest (0 = unlimited)")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if err := cli.Init(); err != nil {
		fail(err)
	}

	var ck *advisor.Checkpointer
	if *ckptDir != "" {
		ck = &advisor.Checkpointer{Dir: *ckptDir, Keep: *ckptKeep}
		ck.SetObserver(cli.Reg)
	}

	adv := advisor.New()
	adv.SetObserver(cli.Reg)
	adv.SetTTL(*staleAfter)

	// Recovery: newest valid generation wins; torn or corrupt ones are
	// skipped. A recovered store serves immediately at its original epoch.
	st := advisor.NewStore()
	recovered := false
	if ck != nil {
		rst, epoch, rs, err := ck.Load()
		if err != nil {
			fail(err)
		}
		if rs.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "advisord: recovery skipped %d invalid checkpoint generation(s): %v\n",
				rs.Skipped, rs.SkippedNames)
		}
		if rst != nil {
			st = rst
			recovered = true
			snap := adv.Restore(st, epoch)
			fmt.Printf("recovered checkpoint epoch %d: %d prefixes, %d samples, age %v\n",
				epoch, snap.Prefixes(), snap.Samples(),
				advisor.CheckpointAge(st, time.Now().UnixNano()).Round(time.Second))
		}
	}
	st.SetObserver(cli.Reg)

	if *in == "" && !*sim && !recovered {
		fmt.Fprintln(os.Stderr, "advisord: need -i DATASET, -sim, or a recoverable -checkpoint-dir (see -h)")
		os.Exit(2)
	}

	// Bind and serve before ingest: /healthz answers (and reports
	// "recovering") from the first moment the address is printed, and a
	// recovered advisord answers advice queries while fresh ingest runs.
	gate := advisor.NewGate(*maxInflight, *retryAfter)
	gate.SetObserver(cli.Reg)
	if !recovered {
		gate.SetState(advisor.GateRecovering)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serverDone := make(chan error, 1)
	go func() {
		serverDone <- advisor.RunServer(ctx, advisor.ServerConfig{
			Listener:     ln,
			Handler:      advisor.NewHandler(adv, advisor.WithGate(gate), advisor.WithRequestTimeout(*reqTimeout)),
			Gate:         gate,
			DrainTimeout: *drainTimeout,
		})
	}()

	start := time.Now()
	switch {
	case *in != "":
		var f atomic.Pointer[os.File]
		stats, err := advisor.RunIngest(ctx, advisor.IngestConfig{
			Open: func() (survey.RecordSource, error) {
				if old := f.Load(); old != nil {
					old.Close()
				}
				nf, err := os.Open(*in)
				if err != nil {
					return nil, err
				}
				f.Store(nf)
				src, _, err := survey.OpenSourceLenient(nf)
				return src, err
			},
			Seed:            *seed,
			CheckpointEvery: *ckptEvery,
			MaxSkip:         *maxSkip,
		}, st, adv, ck)
		if last := f.Load(); last != nil {
			last.Close()
		}
		advisor.RegisterIngestObs(cli.Reg, stats)
		if err != nil {
			fail(err)
		}
		fmt.Printf("ingested %d records (%d skipped) from %s in %v\n",
			stats.Records, stats.Skipped, *in, time.Since(start).Round(time.Millisecond))
	case *sim:
		var vp survey.Vantage
		found := false
		for _, v := range survey.Vantages {
			if string(v.Name) == *vantage {
				vp, found = v, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "advisord: unknown vantage %q\n", *vantage)
			os.Exit(2)
		}
		pop := netmodel.New(netmodel.Config{Seed: *seed, Blocks: *blocks})
		cfg := survey.Config{
			Vantage: vp,
			Blocks:  pop.Blocks(),
			Cycles:  *cycles,
			Seed:    *seed,
			Obs:     cli.Reg,
			Trace:   cli.Tracer,
		}
		fabric := func(int) simnet.Fabric {
			model := netmodel.NewModel(pop)
			model.AddVantage(vp.Addr, vp.Continent)
			return model
		}
		var err error
		if *parallel > 1 {
			_, err = survey.RunSharded(cfg, *parallel, fabric, st)
		} else {
			_, err = survey.Run(simnet.NewNetwork(&simnet.Scheduler{}, fabric(0)), cfg, st)
		}
		if err != nil {
			fail(err)
		}
		adv.Publish(st)
		if _, err := ck.Save(st, adv.Current().Epoch()); err != nil {
			fmt.Fprintln(os.Stderr, "advisord: checkpoint:", err)
		}
		fmt.Printf("surveyed %d blocks x %d cycles from %c in %v\n",
			*blocks, *cycles, vp.Name, time.Since(start).Round(time.Millisecond))
	}

	if snap := adv.Current(); snap != nil {
		fmt.Printf("advice: %d prefixes, %d samples, epoch %d\n",
			snap.Prefixes(), snap.Samples(), snap.Epoch())
		gate.SetState(advisor.GateServing)
	}

	if err := cli.Finish("advisord", *seed, *parallel, nil); err != nil {
		fail(err)
	}

	// Serve until a signal. The store is quiescent now (ingest done), so the
	// periodic checkpoint re-saves the current epoch — cheap insurance for
	// long-lived instances whose disk may outlive the next restart's feed.
	var tick <-chan time.Time
	if ck != nil && *ckptInterval > 0 {
		t := time.NewTicker(*ckptInterval)
		defer t.Stop()
		tick = t.C
	}
serveLoop:
	for {
		select {
		case <-ctx.Done():
			break serveLoop
		case err := <-serverDone:
			if err != nil {
				fail(err)
			}
			return // listener gone without a signal: nothing left to do
		case <-tick:
			epoch := uint64(0)
			if snap := adv.Current(); snap != nil {
				epoch = snap.Epoch()
			}
			if _, err := ck.Save(st, epoch); err != nil {
				fmt.Fprintln(os.Stderr, "advisord: checkpoint:", err)
			}
		}
	}

	// Graceful drain: RunServer has flipped the gate to draining and is
	// finishing in-flight requests; once it returns, write the final
	// checkpoint and exit 0 — the SIGTERM contract.
	if err := <-serverDone; err != nil {
		fmt.Fprintln(os.Stderr, "advisord: drain:", err)
	}
	if ck != nil {
		epoch := uint64(0)
		if snap := adv.Current(); snap != nil {
			epoch = snap.Epoch()
		}
		if _, err := ck.Save(st, epoch); err != nil {
			fail(err)
		}
		fmt.Println("drained; final checkpoint written")
		return
	}
	fmt.Println("drained")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "advisord:", err)
	os.Exit(1)
}
