// Command advisord is the long-running timeout-advice service: it ingests a
// survey dataset (or generates one in-process with the sim engine), builds
// per-/24 latency sketches, and serves timeout recommendations over
// HTTP/JSON:
//
//	GET /timeout?addr=X[&capture=p][&coverage=r]  one recommendation
//	GET /healthz                                  state + epoch + snapshot age + ingest lag
//	GET /snapshot                                 full advice dump
//	GET /metrics                                  Prometheus 0.0.4 text exposition
//
// Usage:
//
//	advisord -i survey.tosv [-listen :8080]
//	advisord -sim [-blocks 512] [-cycles 24] [-seed 42] [-vantage w]
//	         [-parallel N] [-listen :8080]
//	advisord -checkpoint-dir DIR   # recover and serve, no ingest needed
//	         [-checkpoint-keep N] [-checkpoint-every RECORDS]
//	         [-checkpoint-interval D] [-stale-after D]
//	         [-max-inflight N] [-retry-after D] [-request-timeout D]
//	         [-drain-timeout D] [-max-skip N]
//	         [-access-log FILE] [-log-sample N]
//	         [-self-slo D] [-watchdog-interval D]
//	         [-metrics FILE] [-trace FILE] [-manifest FILE] [-debug-addr ADDR]
//
// With -i, the dataset is streamed through the advisor's resilient ingest
// loop (delayed responses recovered by the StreamMatcher attribution rule,
// corrupt records counted and skipped) — memory stays proportional to the
// number of /24 prefixes, not records. With -sim, the same survey the
// surveyor would write to disk is probed straight into the store; -parallel N
// uses the sharded engine, whose published advice is byte-identical to the
// sequential run.
//
// With -checkpoint-dir, the store is checkpointed durably (temp file +
// atomic rename, newest -checkpoint-keep generations retained) and recovered
// on startup from the newest valid generation; a recovered advisord serves
// the checkpointed advice immediately, before — or entirely without — fresh
// ingest. The listener binds and /healthz answers from the start (reporting
// "recovering" until advice is published); advice routes shed load beyond
// -max-inflight with 503 + Retry-After; SIGTERM/SIGINT drains gracefully:
// stop accepting, finish in-flight requests, write a final checkpoint,
// exit 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"timeouts/internal/advisor"
	"timeouts/internal/netmodel"
	"timeouts/internal/obs"
	"timeouts/internal/simnet"
	"timeouts/internal/survey"
)

func main() {
	var (
		in       = flag.String("i", "", "survey dataset to ingest (any format cmd/analyze reads)")
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		sim      = flag.Bool("sim", false, "generate the ingest in-process with the sim engine")
		blocks   = flag.Int("blocks", 512, "-sim: population size in /24 blocks")
		cycles   = flag.Int("cycles", 24, "-sim: probing rounds")
		seed     = flag.Uint64("seed", 42, "-sim: population seed")
		vantage  = flag.String("vantage", "w", "-sim: vantage point: w, c, j or g")
		parallel = flag.Int("parallel", 1, "-sim: shard count (1 = sequential, 0 = one per CPU)")

		ckptDir      = flag.String("checkpoint-dir", "", "durable checkpoint directory (recovery source and save target)")
		ckptKeep     = flag.Int("checkpoint-keep", 3, "checkpoint generations to retain")
		ckptEvery    = flag.Uint64("checkpoint-every", 1<<20, "checkpoint every N ingested records (0 = only on completion and drain)")
		ckptInterval = flag.Duration("checkpoint-interval", 5*time.Minute, "periodic checkpoint interval while serving (0 disables)")
		staleAfter   = flag.Duration("stale-after", 0, "per-prefix staleness TTL: older prefixes degrade to the population fallback (0 disables)")
		maxInflight  = flag.Int("max-inflight", 256, "max concurrent advice requests before shedding with 503")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint sent with shed responses")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Second, "per-request handling deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
		maxSkip      = flag.Uint64("max-skip", 0, "corrupt-record budget for -i ingest (0 = unlimited)")

		accessLog  = flag.String("access-log", "", "write sampled JSONL access logs to this file (\"-\" for stderr)")
		logSample  = flag.Int("log-sample", 100, "log 1 in every N requests (1 = all)")
		selfSLO    = flag.Duration("self-slo", 0, "self-watchdog p99 latency budget; breaches count in advisor.self.timeout_breach (0 disables breach counting)")
		wdInterval = flag.Duration("watchdog-interval", 10*time.Second, "self-watchdog sampling interval")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if err := cli.Init(); err != nil {
		fail(err)
	}

	// The serving registry is always on: /metrics must answer whether or not
	// any -metrics/-trace/-debug-addr flag was set. When the obs CLI did
	// activate, share its registry so file outputs and /metrics agree.
	reg := cli.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}

	var ck *advisor.Checkpointer
	if *ckptDir != "" {
		ck = &advisor.Checkpointer{Dir: *ckptDir, Keep: *ckptKeep}
		ck.SetObserver(reg)
	}

	adv := advisor.New()
	adv.SetObserver(reg)
	adv.SetTTL(*staleAfter)

	// Recovery: newest valid generation wins; torn or corrupt ones are
	// skipped. A recovered store serves immediately at its original epoch.
	st := advisor.NewStore()
	recovered := false
	if ck != nil {
		rst, epoch, rs, err := ck.Load()
		if err != nil {
			fail(err)
		}
		if rs.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "advisord: recovery skipped %d invalid checkpoint generation(s): %v\n",
				rs.Skipped, rs.SkippedNames)
		}
		if rst != nil {
			st = rst
			recovered = true
			snap := adv.Restore(st, epoch)
			fmt.Printf("recovered checkpoint epoch %d: %d prefixes, %d samples, age %v\n",
				epoch, snap.Prefixes(), snap.Samples(),
				advisor.CheckpointAge(st, time.Now().UnixNano()).Round(time.Second))
		}
	}
	st.SetObserver(reg)

	if *in == "" && !*sim && !recovered {
		fmt.Fprintln(os.Stderr, "advisord: need -i DATASET, -sim, or a recoverable -checkpoint-dir (see -h)")
		os.Exit(2)
	}

	// Bind and serve before ingest: /healthz answers (and reports
	// "recovering") from the first moment the address is printed, and a
	// recovered advisord answers advice queries while fresh ingest runs.
	gate := advisor.NewGate(*maxInflight, *retryAfter)
	gate.SetObserver(reg)
	if !recovered {
		gate.SetState(advisor.GateRecovering)
	}

	// Telemetry plane: per-route serve histograms, sampled access logging,
	// the self-watchdog, and a /metrics exposition that folds in every
	// scrape-time collector the daemon owns. /metrics and /healthz sit
	// outside the gate — they must answer precisely while the gate sheds.
	serveMetrics := advisor.NewServeMetrics(reg)
	if *accessLog != "" {
		out := os.Stderr
		if *accessLog != "-" {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			out = f
		}
		serveMetrics.SetAccessLogger(advisor.NewAccessLogger(out, *logSample))
	}
	progress := &advisor.IngestProgress{}
	watchdog := advisor.NewWatchdog(serveMetrics, reg, *selfSLO, *wdInterval)
	promH := obs.PromHandler(reg, obs.NewRuntimeCollector(), adv, progress, ck, watchdog)
	for _, c := range []obs.PromCollector{adv, progress, ck, watchdog} {
		cli.Debug.RegisterProm(c) // -debug-addr's /metrics shows the same series
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go watchdog.Run(ctx)
	serverDone := make(chan error, 1)
	go func() {
		serverDone <- advisor.RunServer(ctx, advisor.ServerConfig{
			Listener: ln,
			Handler: advisor.NewHandler(adv,
				advisor.WithGate(gate),
				advisor.WithRequestTimeout(*reqTimeout),
				advisor.WithServeMetrics(serveMetrics),
				advisor.WithMetrics(promH),
				advisor.WithIngestProgress(progress),
				advisor.WithCheckpointer(ck)),
			Gate:         gate,
			DrainTimeout: *drainTimeout,
		})
	}()

	start := time.Now()
	switch {
	case *in != "":
		var f atomic.Pointer[os.File]
		stats, err := advisor.RunIngest(ctx, advisor.IngestConfig{
			Open: func() (survey.RecordSource, error) {
				if old := f.Load(); old != nil {
					old.Close()
				}
				nf, err := os.Open(*in)
				if err != nil {
					return nil, err
				}
				f.Store(nf)
				src, _, err := survey.OpenSourceLenient(nf)
				return src, err
			},
			Seed:            *seed,
			CheckpointEvery: *ckptEvery,
			MaxSkip:         *maxSkip,
			Progress:        progress,
			Obs:             reg,
			Trace:           cli.Tracer,
		}, st, adv, ck)
		if last := f.Load(); last != nil {
			last.Close()
		}
		advisor.RegisterIngestObs(reg, stats)
		if err != nil {
			fail(err)
		}
		fmt.Printf("ingested %d records (%d skipped) from %s in %v\n",
			stats.Records, stats.Skipped, *in, time.Since(start).Round(time.Millisecond))
	case *sim:
		var vp survey.Vantage
		found := false
		for _, v := range survey.Vantages {
			if string(v.Name) == *vantage {
				vp, found = v, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "advisord: unknown vantage %q\n", *vantage)
			os.Exit(2)
		}
		pop := netmodel.New(netmodel.Config{Seed: *seed, Blocks: *blocks})
		cfg := survey.Config{
			Vantage: vp,
			Blocks:  pop.Blocks(),
			Cycles:  *cycles,
			Seed:    *seed,
			Obs:     reg,
			Trace:   cli.Tracer,
		}
		fabric := func(int) simnet.Fabric {
			model := netmodel.NewModel(pop)
			model.AddVantage(vp.Addr, vp.Continent)
			return model
		}
		var err error
		if *parallel > 1 {
			_, err = survey.RunSharded(cfg, *parallel, fabric, st)
		} else {
			_, err = survey.Run(simnet.NewNetwork(&simnet.Scheduler{}, fabric(0)), cfg, st)
		}
		if err != nil {
			fail(err)
		}
		adv.Publish(st)
		if _, err := ck.Save(st, adv.Current().Epoch()); err != nil {
			fmt.Fprintln(os.Stderr, "advisord: checkpoint:", err)
		}
		fmt.Printf("surveyed %d blocks x %d cycles from %c in %v\n",
			*blocks, *cycles, vp.Name, time.Since(start).Round(time.Millisecond))
	}

	if snap := adv.Current(); snap != nil {
		fmt.Printf("advice: %d prefixes, %d samples, epoch %d\n",
			snap.Prefixes(), snap.Samples(), snap.Epoch())
		gate.SetState(advisor.GateServing)
	}

	if err := cli.Finish("advisord", *seed, *parallel, nil); err != nil {
		fail(err)
	}

	// Serve until a signal. The store is quiescent now (ingest done), so the
	// periodic checkpoint re-saves the current epoch — cheap insurance for
	// long-lived instances whose disk may outlive the next restart's feed.
	var tick <-chan time.Time
	if ck != nil && *ckptInterval > 0 {
		t := time.NewTicker(*ckptInterval)
		defer t.Stop()
		tick = t.C
	}
serveLoop:
	for {
		select {
		case <-ctx.Done():
			break serveLoop
		case err := <-serverDone:
			if err != nil {
				fail(err)
			}
			return // listener gone without a signal: nothing left to do
		case <-tick:
			epoch := uint64(0)
			if snap := adv.Current(); snap != nil {
				epoch = snap.Epoch()
			}
			if _, err := ck.Save(st, epoch); err != nil {
				fmt.Fprintln(os.Stderr, "advisord: checkpoint:", err)
			}
		}
	}

	// Graceful drain: RunServer has flipped the gate to draining and is
	// finishing in-flight requests; once it returns, close the debug plane
	// too (its listener must not outlive the serve plane), write the final
	// checkpoint, and exit 0 — the SIGTERM contract.
	if err := <-serverDone; err != nil {
		fmt.Fprintln(os.Stderr, "advisord: drain:", err)
	}
	if err := cli.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "advisord: debug server:", err)
	}
	if ck != nil {
		epoch := uint64(0)
		if snap := adv.Current(); snap != nil {
			epoch = snap.Epoch()
		}
		if _, err := ck.Save(st, epoch); err != nil {
			fail(err)
		}
		fmt.Println("drained; final checkpoint written")
		return
	}
	fmt.Println("drained")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "advisord:", err)
	os.Exit(1)
}
