// Command rttclient runs one isochronous measurement session against an
// rttserver and reports per-probe and summary latency — the client half of
// the live irtt-style measurement plane (DESIGN.md §13).
//
// Usage:
//
//	rttclient -addr HOST:2112 -key SECRET [-count 10] [-interval 100ms]
//	          [-timeout 1s] [-wait 3s] [-plen 0] [-bind 0.0.0.0:0] [-json]
//	          [-metrics FILE] [-manifest FILE]
//
// Probes leave on a fixed schedule — one every -interval, never coupled to
// reply latency. A reply arriving after -timeout is reported under
// rtt_after_timeout, not loss: the client keeps listening until -wait after
// the last send, the long-listen methodology of the source paper. -wait
// defaults to three times -timeout, so the listen window always outlasts the
// per-probe timeout and trailing probes can still land in the
// rtt_after_timeout band. -json
// prints the full per-probe result to stdout; the default is a one-line
// human summary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"timeouts/internal/obs"
	"timeouts/internal/rtt"
	"timeouts/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:2112", "server UDP address")
		bind     = flag.String("bind", "0.0.0.0:0", "local UDP bind address")
		key      = flag.String("key", "", "pre-shared HMAC key (required)")
		count    = flag.Int("count", 10, "number of probes")
		interval = flag.Duration("interval", 100*time.Millisecond, "isochronous send interval")
		timeout  = flag.Duration("timeout", time.Second, "per-probe timeout (later replies count as rtt_after_timeout)")
		wait     = flag.Duration("wait", 0, "listen window after the last send (0: 3x -timeout)")
		plen     = flag.Int("plen", 0, "probe payload padding bytes")
		seed     = flag.Uint64("seed", 1, "hello-nonce seed")
		asJSON   = flag.Bool("json", false, "print the full result as JSON")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	if *key == "" {
		fmt.Fprintln(os.Stderr, "rttclient: -key is required")
		os.Exit(2)
	}
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "rttclient:", err)
		os.Exit(1)
	}

	server, err := transport.ResolveUDP(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rttclient:", err)
		os.Exit(1)
	}
	tr, err := transport.NewUDP(*bind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rttclient:", err)
		os.Exit(1)
	}
	defer tr.Close()

	c := rtt.NewClient(tr, rtt.ClientConfig{
		Server:     server,
		Key:        []byte(*key),
		Seed:       *seed,
		Count:      *count,
		Interval:   *interval,
		Timeout:    *timeout,
		Wait:       *wait,
		PayloadLen: *plen,
	})
	c.SetObserver(cli.Reg)
	res, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rttclient:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "rttclient:", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("sent=%d received=%d lost=%d rtt_after_timeout=%d dups=%d\n",
			res.Sent, res.Received, res.Lost, res.RTTAfterTimeout, res.Dups)
		fmt.Printf("rtt p50=%v p90=%v p99=%v\n", res.RTT.P50, res.RTT.P90, res.RTT.P99)
	}
	if err := cli.Finish("rttclient", *seed, 1, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rttclient:", err)
		os.Exit(1)
	}
}
