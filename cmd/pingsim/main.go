// Command pingsim is `ping` against the synthetic Internet: it prints the
// familiar per-probe lines, but the destination is a modeled host — so you
// can watch the paper's phenomena happen: the slow first reply of a
// cellular radio waking up, the decaying RTTs of a buffered-outage flush,
// the satellite's unshakable half-second floor.
//
// Usage:
//
//	pingsim [-blocks 512] [-seed 42] [-c 10] [-i 1s] [-W 60s] [addr]
//	        [-metrics FILE] [-trace FILE] [-manifest FILE] [-debug-addr ADDR]
//	pingsim -class cellular     # pick a host of that class to probe
//
// Without an address, a cellular host is chosen (the paper's protagonist).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timeouts/internal/ipaddr"
	"timeouts/internal/ipmeta"
	"timeouts/internal/netmodel"
	"timeouts/internal/obs"
	"timeouts/internal/scamper"
	"timeouts/internal/simnet"
	"timeouts/internal/stats"
)

func main() {
	var (
		blocks    = flag.Int("blocks", 512, "population size in /24 blocks")
		seed      = flag.Uint64("seed", 42, "population seed")
		count     = flag.Int("c", 10, "probes to send")
		interval  = flag.Duration("i", time.Second, "inter-probe interval")
		timeout   = flag.Duration("W", 60*time.Second, "listen window after the last probe")
		className = flag.String("class", "cellular", "host class to pick when no address is given")
		startAt   = flag.Duration("at", 0, "simulation time to start probing (episodes vary over time)")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "pingsim:", err)
		os.Exit(1)
	}

	pop := netmodel.New(netmodel.Config{Seed: *seed, Blocks: *blocks})
	var dst ipaddr.Addr
	if flag.NArg() >= 1 {
		a, err := ipaddr.Parse(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pingsim:", err)
			os.Exit(2)
		}
		dst = a
	} else {
		var wantClass netmodel.Class
		switch *className {
		case "server":
			wantClass = netmodel.ClassServer
		case "quiet":
			wantClass = netmodel.ClassQuiet
		case "dsl":
			wantClass = netmodel.ClassDSL
		case "congested":
			wantClass = netmodel.ClassCongested
		case "cellular":
			wantClass = netmodel.ClassCellular
		case "satellite":
			wantClass = netmodel.ClassSatellite
		default:
			fmt.Fprintf(os.Stderr, "pingsim: unknown class %q\n", *className)
			os.Exit(2)
		}
		for i := 0; i < pop.NumAddrs(); i++ {
			p := pop.Profile(pop.AddrAt(i))
			if p.Responsive && p.JoinTime == 0 && p.Class == wantClass {
				dst = p.Addr
				break
			}
		}
		if dst == 0 {
			fmt.Fprintf(os.Stderr, "pingsim: no %s host in this population\n", *className)
			os.Exit(1)
		}
	}
	pr := pop.Profile(dst)
	as := "unknown AS"
	if pr.AS.ASN != 0 {
		as = fmt.Sprintf("AS%d %s (%s, %s)", pr.AS.ASN, pr.AS.Owner, pr.AS.Type, pr.AS.Continent)
	}
	fmt.Printf("PING %s — %s\n", dst, as)
	if pr.Responsive {
		fmt.Printf("host class: %s, severity %.2f\n\n", pr.Class, pr.Severity)
	} else {
		fmt.Printf("host is not responsive; expect silence\n\n")
	}

	model := netmodel.NewModel(pop)
	src := ipaddr.MustParse("240.0.3.1")
	model.AddVantage(src, ipmeta.NorthAmerica)
	sched := &simnet.Scheduler{}
	net := simnet.NewNetwork(sched, model)
	prob := scamper.New(net, src, ipmeta.NorthAmerica)
	defer prob.Close()
	if cli.Reg != nil {
		prob.SetObserver(cli.Reg)
	}
	cli.Tracer.SimSpan("ping.train", *startAt, *startAt+time.Duration(*count)**interval)

	prob.SchedulePing(dst, scamper.ICMP, simnet.Time(*startAt), *count, *interval)
	// Keep listening (tcpdump-style) for the window after the last probe.
	sched.Run()
	_ = timeout
	if err := cli.Finish("pingsim", *seed, 1, nil); err != nil {
		fmt.Fprintln(os.Stderr, "pingsim:", err)
		os.Exit(1)
	}

	var rtts []time.Duration
	lost := 0
	for _, r := range prob.ResultsFor(dst, scamper.ICMP) {
		if !r.Responded {
			lost++
			fmt.Printf("probe seq=%-3d  *** no response\n", r.Seq)
			continue
		}
		rtts = append(rtts, r.RTT)
		note := ""
		switch {
		case r.Seq == 0 && r.RTT > time.Second:
			note = "   <- first-ping wake-up?"
		case r.RTT > 100*time.Second:
			note = "   <- sleepy (buffered outage)"
		case r.RTT > 5*time.Second:
			note = "   <- congestion episode"
		}
		fmt.Printf("probe seq=%-3d  time=%v%s\n", r.Seq, r.RTT.Round(100*time.Microsecond), note)
	}
	fmt.Printf("\n--- %s ping statistics ---\n", dst)
	fmt.Printf("%d probes transmitted, %d received, %.0f%% loss\n",
		*count, len(rtts), 100*float64(lost)/float64(*count))
	if len(rtts) > 0 {
		stats.SortDurations(rtts)
		fmt.Printf("rtt min/median/max = %v / %v / %v\n",
			rtts[0].Round(100*time.Microsecond),
			stats.Percentile(rtts, 50).Round(100*time.Microsecond),
			rtts[len(rtts)-1].Round(100*time.Microsecond))
	}
	if len(rtts) >= 2 && rtts[len(rtts)-1] > 2*rtts[0] {
		fmt.Println("note: a fixed 3s timeout would have mislabeled the slow replies as loss;")
		fmt.Println("the paper recommends retransmitting early but listening ~60s.")
	}
}
