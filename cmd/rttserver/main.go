// Command rttserver answers authenticated rtt session probes over UDP — the
// server half of the live irtt-style measurement plane (DESIGN.md §13).
//
// Usage:
//
//	rttserver -addr :2112 -key SECRET [-max-conns 64] [-idle 2m] [-seed 1]
//	          [-metrics FILE] [-manifest FILE] [-debug-addr ADDR]
//
// Sessions are HMAC-authenticated under the pre-shared -key; packets that
// fail verification are counted and silently ignored, so an unauthenticated
// scanner cannot tell the server is there. The server runs until SIGINT or
// SIGTERM, then prints session counters and writes the observability
// artifacts requested by the -metrics/-manifest flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"timeouts/internal/obs"
	"timeouts/internal/rtt"
	"timeouts/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", ":2112", "UDP listen address")
		key      = flag.String("key", "", "pre-shared HMAC key (required)")
		maxConns = flag.Int("max-conns", 64, "maximum concurrent sessions")
		idle     = flag.Duration("idle", 2*time.Minute, "session idle expiry")
		seed     = flag.Uint64("seed", 1, "session-token seed (tokens are deterministic in it)")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	if *key == "" {
		fmt.Fprintln(os.Stderr, "rttserver: -key is required")
		os.Exit(2)
	}
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "rttserver:", err)
		os.Exit(1)
	}

	tr, err := transport.NewUDP(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rttserver:", err)
		os.Exit(1)
	}
	srv := rtt.NewServer(tr, rtt.ServerConfig{
		Key:         []byte(*key),
		Seed:        *seed,
		MaxConns:    *maxConns,
		IdleTimeout: *idle,
	})
	srv.SetObserver(cli.Reg)
	cli.Debug.RegisterProm(srv) // live session count on -debug-addr's /metrics
	srv.Start()
	fmt.Printf("rttserver: listening on %s:%d\n", tr.LocalAddr().IP, tr.LocalAddr().Port)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	srv.Close()
	tr.Close()
	cli.Close()
	fmt.Printf("rttserver: packets=%d sessions=%d echoes=%d auth_failures=%d\n",
		srv.Packets(), srv.Hellos(), srv.Echoes(), srv.AuthFailures())
	if err := cli.Finish("rttserver", *seed, 1, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rttserver:", err)
		os.Exit(1)
	}
}
