// Command reproduce regenerates the tables and figures of "Timeouts: Beware
// Surprisingly High Delay" (IMC 2015) against the synthetic population,
// printing each one next to the paper's reference numbers.
//
// Usage:
//
//	reproduce [-scale quick|default|full] [-exp id[,id...]] [-list] [-seed N]
//	          [-parallel N] [-stream] [-dense]
//	          [-metrics FILE] [-trace FILE] [-manifest FILE] [-debug-addr ADDR]
//
// Without -exp, every experiment in the registry runs in paper order. With
// -parallel N (N > 1) the shared survey and Zmap workloads run on the
// sharded parallel engine; the deterministic merge keeps the datasets — and
// therefore every reported number — byte-identical to the sequential run.
// -parallel 0 selects one shard per CPU. With -stream the shared per-address
// quantiles come from the bounded-memory streaming pipeline (the survey
// probes straight into a core.StreamMatcher, no intermediate dataset); at
// simulation scale the results are identical to the in-memory matcher.
// With -dense the workloads use flat rank-indexed state instead of
// per-address maps throughout (bounded memory at large scales, identical
// output; see the abl-dense experiment).
//
// The observability flags collect metrics and phase spans from every
// workload the lab runs, plus a wall-clock span per experiment; -debug-addr
// serves pprof and expvar while the run is live. For a fixed seed the
// -metrics snapshot is byte-identical whatever -parallel is.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"timeouts/internal/experiments"
	"timeouts/internal/obs"
)

func main() {
	var (
		scaleName = flag.String("scale", "quick", "workload scale: quick, default, or full")
		expList   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		seed      = flag.Uint64("seed", 0, "override the population seed")
		dataDir   = flag.String("data", "", "also export the figures' plottable series as CSV files into this directory")
		parallel  = flag.Int("parallel", 1, "shard count for the survey/scan workloads (1 = sequential, 0 = one per CPU)")
		stream    = flag.Bool("stream", false, "bounded-memory streaming pipeline for the shared quantiles")
		dense     = flag.Bool("dense", false, "flat rank-indexed state for the shared workloads (bounded memory, identical output)")
	)
	cli := obs.RegisterCLI()
	flag.Parse()
	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-11s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "default":
		scale = experiments.Default
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "reproduce: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	var entries []experiments.Entry
	if *expList == "" {
		entries = experiments.Registry
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "reproduce: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	lab := experiments.NewLab(scale)
	lab.Parallel = *parallel
	lab.Stream = *stream
	lab.Dense = *dense
	lab.Obs = cli.Reg
	lab.Trace = cli.Tracer
	start := time.Now()
	for _, e := range entries {
		t0 := time.Now()
		done := cli.Tracer.StartWall("exp." + e.ID)
		rep, err := e.Run(lab)
		done()
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(rep.Format())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if *dataDir != "" {
		if err := lab.ExportData(*dataDir); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: exporting data:", err)
			os.Exit(1)
		}
		fmt.Printf("figure data series written to %s\n", *dataDir)
	}
	if err := cli.Finish("reproduce", scale.Seed, *parallel, nil); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
	fmt.Printf("all %d experiments completed in %v (scale %s, seed %d)\n",
		len(entries), time.Since(start).Round(time.Millisecond), *scaleName, scale.Seed)
}
