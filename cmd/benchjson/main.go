// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark results on stdout — the machine-readable form `make
// bench` stores as BENCH_<date>.json (see README "Benchmark trajectory").
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_2026-08-06.json
//
// Non-benchmark lines (package headers, PASS/ok trailers) are skipped, and
// unparsable benchmark lines are ignored rather than fatal, so a partially
// failing bench run still yields the results that completed.
package main

import (
	"fmt"
	"os"

	"timeouts/internal/obs"
)

func main() {
	if err := obs.WriteBenchJSON(os.Stdout, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
