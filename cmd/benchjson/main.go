// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark results on stdout — the machine-readable form `make
// bench` stores as BENCH_<date>.json (see README "Benchmark trajectory") —
// and compares two such files as the benchmark-regression gate behind
// `make bench-compare`.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_2026-08-06.json
//	go test -bench=. -benchmem ./... | benchjson -summary > BENCH_2026-08-06.json
//	benchjson -compare BENCH_old.json BENCH_new.json [-threshold 10]
//
// In convert mode, non-benchmark lines (package headers, PASS/ok trailers)
// are skipped, and unparsable benchmark lines are ignored rather than fatal,
// so a partially failing bench run still yields the results that completed.
// With -summary, a one-line-per-benchmark human summary (name, ns/op,
// ops/sec) is also printed to stderr.
//
// In compare mode, benchmarks are matched by name and GOMAXPROCS suffix and
// the exit status is 1 when any matched benchmark's ns/op — or, for
// benchmarks reporting the peak-heap-B metric (obs.ReportPeakHeap,
// obs.HeapSampler) — grew by more than the threshold percentage (default
// 10): the CI regression gate covers time and memory footprint alike.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"timeouts/internal/obs"
)

func main() {
	compare := flag.Bool("compare", false, "compare two BENCH_*.json files (old new) instead of converting stdin")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent ns/op growth (with -compare)")
	summary := flag.Bool("summary", false, "also print a one-line-per-benchmark summary to stderr (convert mode)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		oldRes, err := readBenchJSON(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newRes, err := readBenchJSON(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		deltas := obs.CompareBench(oldRes, newRes, *threshold)
		if len(deltas) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: no matching benchmarks to compare")
			return
		}
		if obs.WriteBenchDeltas(os.Stdout, deltas) {
			fmt.Fprintf(os.Stderr, "benchjson: ns/op or peak-heap regression beyond %.0f%% (%s vs %s)\n",
				*threshold, flag.Arg(0), flag.Arg(1))
			os.Exit(1)
		}
		return
	}

	results := obs.ParseBench(os.Stdin)
	if *summary {
		obs.WriteBenchSummary(os.Stderr, results)
	}
	if results == nil {
		results = []obs.BenchResult{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func readBenchJSON(path string) ([]obs.BenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []obs.BenchResult
	if err := json.NewDecoder(f).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}
