module timeouts

go 1.22
